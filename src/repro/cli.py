"""Command-line driver.

Five subcommands, all but ``regress`` writing run-manifest provenance to
``runs/``:

* ``repro experiment <id ...|all> [--csv]`` — reproduce the paper's
  tables/figures (the historical ``repro-experiment`` interface; the
  subcommand word is optional, so ``repro-experiment table1`` still
  works).
* ``repro trace`` — run the ECG benchmark with the Perfetto trace
  recorder attached and write a Chrome-trace JSON per architecture
  (open it in https://ui.perfetto.dev).
* ``repro profile`` — run with the metrics collector attached, print
  the registry (sync-group-size and conflict-burst histograms included)
  and cross-check the probe counters against ``SimulationStats``.
* ``repro watch`` — stream ECG blocks through the node with the
  windowed-telemetry aggregator attached and render a live rolling
  dashboard (per-core IPC, stall/conflict/broadcast rates, lockstep
  fraction, deadline misses); ``--json-lines`` emits one JSON object
  per closed window for piping.
* ``repro regress`` — scan the run manifests for cross-revision digest
  drift (or same-revision nondeterminism) and exit non-zero on any
  finding; the CI regression gate (``--baseline DIR`` compares against
  a downloaded artifact, e.g. main's manifests, at PR time).
* ``repro farm`` — shard N independent patient runs across a process
  pool with warm per-worker caches, stream per-run + fleet manifest
  records, and print a fleet summary table (p50/p99 cycle budgets,
  deadline-miss rate, cache hit rate).
* ``repro dse`` — sweep the design space (arch x cores x IM/DM banks x
  LUT mapping x tech node x supply voltage), rank every point with the
  calibrated analytical model, escalate only the Pareto front to
  cycle-accurate simulation on the farm, and write the front artifact
  plus a ``dse`` manifest record with cache counters and fidelity.
* ``repro faults`` — run a deterministic fault-injection campaign
  (seeded bit flips into register files, data-memory banks and the
  instruction image, plus stuck/dead cores), classify every trial
  (masked / sdc / detected / hang), measure graceful degradation on
  dead-core trials, and write a ``fault`` manifest record whose digest
  reproduces across engines, worker counts and ``--resume``.

Exit codes are uniform across subcommands: 0 success, 1 a gate failed
(regression finding, failed shard, SDC rate over ``--max-sdc``), 2 a
usage or configuration error (:class:`repro.errors.ReproError` renders
as one line on stderr, never a traceback).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS

_ARCH_CHOICES = ("mc-ref", "ulpmc-int", "ulpmc-bank", "all")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=_ARCH_CHOICES, default="all",
                        help="platform to run (default: all three)")
    parser.add_argument("--samples", type=int, default=512,
                        help="ECG block length (paper geometry: 512)")
    parser.add_argument("--measurements", type=int, default=256,
                        help="compressed measurements per block")
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="batch-commit provably conflict-free simulator cycles "
             "(bit-identical results, several times faster)")
    parser.add_argument(
        "--no-blocks", action="store_true",
        help="disable the basic-block translation cache inside the "
             "fast-forward engine (escape hatch; per-instruction "
             "dispatch is slower but bit-identical)")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the run manifest")


def _add_sampling(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample", metavar="EVENT=N", action="append", default=[],
        help="deliver only every N-th occurrence of EVENT (repeatable; "
             "exact occurrence counters are kept, but derived metrics "
             "become approximate, so the probe/stats cross-check is "
             "skipped)")


def _apply_sampling(bus, parser, pairs) -> bool:
    """Install ``EVENT=N`` policies; True if any event is decimated."""
    sampled = False
    for pair in pairs:
        event, _, every = pair.partition("=")
        try:
            rate = int(every)
        except ValueError:
            rate = 0
        if not event or rate < 1:
            parser.error(f"--sample expects EVENT=N with N >= 1, "
                         f"got {pair!r}")
        from repro.obs import ConfigurationError
        try:
            bus.set_sampling(event, rate)
        except ConfigurationError as exc:
            parser.error(str(exc))
        sampled = sampled or rate > 1
    return sampled


def _arches(name: str) -> list[str]:
    from repro.platform import ARCH_NAMES
    return list(ARCH_NAMES) if name == "all" else [name]


def _block_summary(system):
    """Translation-block statistics of a finished run (None if the
    fast-forward engine never attached)."""
    return system.block_summary()


def _emit_json_line(payload: dict) -> None:
    """One JSON object per line, flushed immediately.

    Every machine-readable stream (``watch --json-lines``, ``farm
    --json``) goes through here so piped consumers — including the
    farm's own progress readers — see each record the moment it closes,
    not whenever a 4 KiB stdio buffer happens to fill.
    """
    sys.stdout.write(json.dumps(payload, sort_keys=True) + "\n")
    sys.stdout.flush()


def _built_benchmark(args):
    from repro.kernels import BenchmarkSpec, build_benchmark
    spec = BenchmarkSpec(n_samples=args.samples,
                         n_measurements=args.measurements,
                         huffman_private=True)
    return build_benchmark(spec)


def cmd_experiment(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce tables/figures of Dogan et al., DATE 2012.")
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument("--csv", action="store_true",
                        help="emit raw CSV instead of formatted text")
    parser.add_argument("--output", metavar="DIR", default=None,
                        help="also write one CSV per experiment into DIR")
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="batch-commit provably conflict-free simulator cycles "
             "(bit-identical results, several times faster)")
    parser.add_argument(
        "--no-blocks", action="store_true",
        help="disable the basic-block translation cache inside the "
             "fast-forward engine (escape hatch; per-instruction "
             "dispatch is slower but bit-identical)")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the run manifest")
    args = parser.parse_args(argv)

    if args.fast_forward:
        from repro.platform import set_default_fast_forward
        set_default_fast_forward(True)
    if args.no_blocks:
        from repro.platform import set_default_translation_blocks
        set_default_translation_blocks(False)

    requested = list(EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    output_dir = None
    if args.output is not None:
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    for name in requested:
        started = time.perf_counter()
        result = EXPERIMENTS[name].run()
        wall = time.perf_counter() - started
        print(result.to_csv() if args.csv else result.to_text())
        print()
        if output_dir is not None:
            path = output_dir / f"{name}.csv"
            path.write_text(result.to_csv() + "\n", encoding="utf-8")
        if not args.no_manifest:
            from repro.obs import manifest_record, write_manifest
            write_manifest(manifest_record(
                "experiment", name, payload=result.to_csv(),
                wall_time_s=wall,
                extra={"fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "max_relative_error": result.max_relative_error()},
            ), directory=args.runs_dir)
    return 0


def cmd_trace(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run the ECG benchmark with the Perfetto trace "
                    "recorder attached; the JSON opens in ui.perfetto.dev.")
    _add_common(parser)
    _add_sampling(parser)
    parser.add_argument("--out-dir", metavar="DIR", default="runs",
                        help="directory for trace-<arch>.json "
                             "(default: runs/)")
    args = parser.parse_args(argv)

    from repro.kernels import verify_result
    from repro.obs import (ProbeMetrics, TraceRecorder, manifest_record,
                           write_manifest)
    from repro.platform import build_platform

    built = _built_benchmark(args)
    for arch in _arches(args.arch):
        started = time.perf_counter()
        system = build_platform(arch, fast_forward=args.fast_forward,
                                translation_blocks=not args.no_blocks)
        bus = system.probe_bus()
        sampled = _apply_sampling(bus, parser, args.sample)
        recorder = TraceRecorder.attach(system)
        metrics = ProbeMetrics.attach(bus)
        result = system.run(built.benchmark)
        verify_result(built, result)
        wall = time.perf_counter() - started
        if sampled:
            metrics.finish()  # decimated metrics can't reconcile exactly
        else:
            mismatches = metrics.verify_against(result.stats)
            if mismatches:
                print(f"{arch}: probe/stats mismatch: {mismatches}",
                      file=sys.stderr)
                return 1
        path = recorder.save(
            pathlib.Path(args.out_dir) / f"trace-{arch}.json")
        print(f"{arch}: {result.stats.total_cycles} cycles, "
              f"{len(recorder.slices)} slices, "
              f"{len(recorder.ff_spans)} fast-forward spans -> {path}")
        if not args.no_manifest:
            write_manifest(manifest_record(
                "trace", built.benchmark.name, arch=arch,
                config=system.config, stats=result.stats,
                event_summary=metrics.registry.snapshot(),
                wall_time_s=wall,
                extra={"trace_file": str(path),
                       "fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "blocks": _block_summary(system),
                       "sampling": dict(
                           pair.partition("=")[::2]
                           for pair in args.sample) or None},
            ), directory=args.runs_dir)
    return 0


def cmd_profile(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run the ECG benchmark with the metrics registry "
                    "attached and print counters and histograms.")
    _add_common(parser)
    _add_sampling(parser)
    parser.add_argument(
        "--unbatched", action="store_true",
        help="deliver every probe event through its own callback "
             "instead of the batched ring-buffer path (slower; useful "
             "for cross-checking the two delivery modes)")
    args = parser.parse_args(argv)

    from repro.kernels import verify_result
    from repro.obs import ProbeMetrics, manifest_record, write_manifest
    from repro.platform import build_platform

    built = _built_benchmark(args)
    for arch in _arches(args.arch):
        started = time.perf_counter()
        system = build_platform(arch, fast_forward=args.fast_forward,
                                translation_blocks=not args.no_blocks)
        bus = system.probe_bus()
        sampled = _apply_sampling(bus, parser, args.sample)
        metrics = ProbeMetrics.attach(bus, batched=not args.unbatched)
        result = system.run(built.benchmark)
        verify_result(built, result)
        wall = time.perf_counter() - started
        registry = metrics.finish()
        registry.update_from_stats(result.stats)
        print(f"== {arch} ({'fast-forward' if args.fast_forward else 'exact'}"
              f", {wall:.2f} s) ==")
        print(registry.render())
        if sampled:
            print("probe/stats reconciliation skipped (sampling active)")
        else:
            mismatches = metrics.verify_against(result.stats)
            if mismatches:
                print(f"probe/stats RECONCILIATION FAILED: {mismatches}",
                      file=sys.stderr)
                return 1
            print("probe/stats reconciliation ok")
        print()
        if not args.no_manifest:
            write_manifest(manifest_record(
                "profile", built.benchmark.name, arch=arch,
                config=system.config, stats=result.stats,
                event_summary=registry.snapshot(), wall_time_s=wall,
                extra={"fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "blocks": _block_summary(system),
                       "batched": not args.unbatched},
            ), directory=args.runs_dir)
    return 0


def _watch_dashboard(arch: str, mode: str, aggregator) -> str:
    """One repaint of the live table (plain stdlib, ANSI-free text)."""
    fleet = aggregator.fleet_summary()
    last = aggregator.windows[-1]
    lines = [
        f"repro watch — {arch} [{mode}]  "
        f"window={aggregator.window_cycles} cy  "
        f"windows={fleet['windows']}  "
        f"cycles={fleet['stream_cycles']}",
        f"{'rate':<24}{'last':>10}{'mean':>10}{'p50':>10}{'p99':>10}",
    ]
    for name, fmt in (("ipc", "{:.3f}"), ("stall_rate", "{:.3f}"),
                      ("conflicts_per_kcycle", "{:.2f}"),
                      ("broadcasts_per_kcycle", "{:.1f}"),
                      ("lockstep_fraction", "{:.1%}")):
        stats = fleet["rates"][name]
        cells = "".join(
            f"{fmt.format(stats[key]) if stats[key] is not None else '-':>10}"
            for key in ("last", "mean", "p50", "p99"))
        lines.append(f"{name:<24}{cells}")
    ipc = last.core_ipc
    lines.append("core      " + "".join(f"{pid:>7}"
                                        for pid in range(len(ipc))))
    lines.append("ipc       " + "".join(f"{value:>7.3f}" for value in ipc))
    lines.append("stalls    " + "".join(f"{value:>7}"
                                        for value in last.core_stalls))
    streaming = fleet.get("streaming")
    if streaming:
        lines.append(
            f"blocks={streaming['blocks_done']}  "
            f"deadline_misses={streaming['deadline_misses']}  "
            f"worst_block={streaming['worst_block_cycles']} cy  "
            f"budget={streaming['deadline_budget_cycles']:.0f} cy")
    return "\n".join(lines)


def cmd_watch(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro watch",
        description="Stream ECG blocks with the windowed-telemetry "
                    "aggregator attached and render a live rolling "
                    "dashboard of per-core/fleet rates.")
    _add_common(parser)
    parser.add_argument(
        "--window", type=int, default=None, metavar="CYCLES",
        help="telemetry window length in cycles (default: 8192)")
    parser.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="minimum wall-clock delay between dashboard repaints "
             "(default: 0.5; 0 repaints on every window)")
    parser.add_argument(
        "--json-lines", action="store_true",
        help="emit one JSON object per closed window on stdout instead "
             "of the dashboard (machine mode, pipeable)")
    parser.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="number of consecutive ECG blocks to stream (default: 2)")
    parser.add_argument(
        "--clock-hz", type=float, default=1e6,
        help="node clock for the per-block deadline budget "
             "(default: 1e6)")
    parser.add_argument(
        "--unbatched", action="store_true",
        help="subscribe the aggregator per-event instead of via batch "
             "drains (slower; windows are bit-identical either way)")
    parser.add_argument(
        "--speedup-vs-exact", action="store_true",
        help="also time an uninstrumented exact-mode run of the same "
             "stream and record the wall-time ratio in the manifest")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    from repro.kernels import BenchmarkSpec
    from repro.kernels.benchmark import build_block_series
    from repro.obs import manifest_record, write_manifest
    from repro.obs.telemetry import DEFAULT_WINDOW_CYCLES, \
        WindowedAggregator
    from repro.platform import build_platform
    from repro.platform.streaming import SAMPLE_RATE_HZ, run_stream

    window = args.window if args.window is not None \
        else DEFAULT_WINDOW_CYCLES
    spec = BenchmarkSpec(n_samples=args.samples,
                         n_measurements=args.measurements,
                         huffman_private=True)
    series = build_block_series(spec, n_blocks=args.repeat)
    budget = args.clock_hz * (args.samples / SAMPLE_RATE_HZ)
    mode = "fast-forward" if args.fast_forward else "exact"
    tty = sys.stdout.isatty()

    for arch in _arches(args.arch):
        system = build_platform(arch, fast_forward=args.fast_forward,
                                translation_blocks=not args.no_blocks)
        aggregator = WindowedAggregator.attach(
            system.probe_bus(), window_cycles=window,
            batched=not args.unbatched, deadline_budget_cycles=budget)
        last_paint = [0.0]

        def on_window(summary, arch=arch, aggregator=aggregator,
                      last_paint=last_paint):
            if args.json_lines:
                payload = summary.to_dict()
                payload.update(arch=arch, ipc=summary.ipc,
                               stall_rate=summary.stall_rate,
                               lockstep_fraction=summary.lockstep_fraction)
                _emit_json_line(payload)
                return
            now = time.monotonic()
            if now - last_paint[0] < args.interval:
                return
            last_paint[0] = now
            if tty:
                print("\x1b[2J\x1b[H", end="")
            print(_watch_dashboard(arch, mode, aggregator), flush=True)
            if not tty:
                print()

        aggregator.listeners.append(on_window)
        started = time.perf_counter()
        report = run_stream(arch, series, clock_hz=args.clock_hz,
                            system=system)
        wall = time.perf_counter() - started
        aggregator.detach()
        if not args.json_lines and aggregator.windows:
            # Closing repaint so short runs show at least one table.
            if tty:
                print("\x1b[2J\x1b[H", end="")
            print(_watch_dashboard(arch, mode, aggregator))
        speedup = None
        if args.speedup_vs_exact:
            reference = build_platform(arch, fast_forward=False)
            ref_started = time.perf_counter()
            run_stream(arch, series, clock_hz=args.clock_hz,
                       system=reference)
            ref_wall = time.perf_counter() - ref_started
            speedup = ref_wall / wall if wall > 0 else None
        print(f"{arch}: {len(aggregator.windows)} windows over "
              f"{args.repeat} block(s) in {wall:.2f} s, "
              f"{report.deadline_misses} deadline miss(es)"
              + (f", {speedup:.2f}x vs exact" if speedup else ""),
              flush=True)
        if not args.no_manifest:
            write_manifest(manifest_record(
                "watch", series[0].benchmark.name, arch=arch,
                config=system.config,
                telemetry=aggregator.telemetry_block(),
                wall_time_s=wall, speedup_vs_exact=speedup,
                extra={"fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "batched": not args.unbatched,
                       "window_cycles": window,
                       "blocks": args.repeat,
                       "clock_hz": args.clock_hz,
                       "deadline_budget_cycles": budget,
                       "deadline_misses": report.deadline_misses},
            ), directory=args.runs_dir)
    return 0


def _farm_summary_table(fleet) -> str:
    """The final fleet summary table (plain text)."""
    summary = fleet.fleet_summary()
    cache = summary["shared_cache"]
    cycles = summary["cycles_per_block"]
    lines = [
        f"farm fleet — {summary['completed']}/{summary['runs']} runs ok "
        f"({summary['failed']} failed, {summary['cancelled']} cancelled, "
        f"{summary['worker_crashes']} worker crash(es)), "
        f"{summary['workers']} worker(s), {summary['wall_time_s']:.2f} s "
        f"wall"
        + (f", {summary['runs_per_s']:.2f} runs/s"
           if summary['runs_per_s'] else ""),
        f"{'arch':<11} {'runs':>5} {'blocks':>7} {'misses':>7} "
        f"{'p50 cy/blk':>11} {'p99 cy/blk':>11}",
    ]
    for arch, row in summary["per_arch"].items():
        lines.append(
            f"{arch:<11} {row['runs']:>5} {row['blocks_done']:>7} "
            f"{row['deadline_misses']:>7} {row['p50_block_cycles']:>11} "
            f"{row['p99_block_cycles']:>11}")
    lines.append(
        f"{'fleet':<11} {summary['completed']:>5} "
        f"{summary['blocks_done']:>7} {summary['deadline_misses']:>7} "
        f"{cycles['p50'] if cycles['p50'] is not None else '-':>11} "
        f"{cycles['p99'] if cycles['p99'] is not None else '-':>11}")
    if cache["hit_rate"] is not None:
        lines.append(
            f"shared caches: {cache['hits']}/{cache['lookups']} lookups "
            f"warm, {cache['source_compiles']} source compile(s) "
            f"(hit rate {cache['hit_rate']:.1%})")
    if summary["deadline_miss_rate"] is not None:
        lines.append(
            f"deadline-miss rate: {summary['deadline_miss_rate']:.2%} "
            f"({summary['deadline_misses']}/{summary['blocks_done']} "
            f"blocks)")
    if summary["worker_timeouts"] or summary["resumed_from_checkpoint"]:
        lines.append(
            f"resilience: {summary['worker_timeouts']} worker(s) killed "
            f"on timeout/heartbeat, {summary['resumed_from_checkpoint']} "
            f"shard(s) resumed from checkpoint")
    for shard, info in summary["retries"].items():
        backoffs = ", ".join(
            f"{value:g}s" for value in info["backoff_schedule_s"])
        lines.append(f"  retried {shard}: {info['attempts']} attempt(s), "
                     f"cause(s) {'/'.join(info['causes'])}, "
                     f"backoff [{backoffs}]")
    lines.append(f"fleet digest: {fleet.digest()}")
    return "\n".join(lines)


def cmd_farm(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro farm",
        description="Shard N independent patient runs (seed x arch x "
                    "window) across a worker pool with warm per-worker "
                    "caches; streams farm/fleet manifest records and "
                    "prints a fleet summary.")
    parser.add_argument("--runs", type=int, default=8, metavar="N",
                        help="number of independent patient runs "
                             "(default: 8)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes (default: 2)")
    parser.add_argument("--arch", choices=_ARCH_CHOICES, default="mc-ref",
                        help="platform(s); 'all' cycles the three "
                             "architectures across shards "
                             "(default: mc-ref)")
    parser.add_argument("--samples", type=int, default=512,
                        help="ECG block length (paper geometry: 512)")
    parser.add_argument("--measurements", type=int, default=256,
                        help="compressed measurements per block")
    parser.add_argument("--blocks", type=int, default=2, metavar="N",
                        help="ECG blocks streamed per run (default: 2)")
    parser.add_argument("--window", type=int, default=8192,
                        metavar="CYCLES",
                        help="telemetry window length (default: 8192)")
    parser.add_argument("--clock-hz", type=float, default=1e6,
                        help="node clock for deadline budgets "
                             "(default: 1e6)")
    parser.add_argument("--seed", type=int, default=None, metavar="BASE",
                        help="fleet base seed; per-shard seeds derive "
                             "deterministically from (seed, shard)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="requeue a crashed/failed job up to N times "
                             "(default: 1)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock cap; an overrunning job "
                             "has its worker killed and is requeued with "
                             "cause 'timeout'")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill a worker whose heartbeat goes silent "
                             "this long (wedged interpreter) and requeue "
                             "its job with cause 'heartbeat'")
    parser.add_argument("--checkpoint", metavar="FILE", default=None,
                        help="append every completed shard to this "
                             "checkpoint JSONL (default with --resume: "
                             "derived from the plan under "
                             "RUNS_DIR/checkpoints/)")
    parser.add_argument("--resume", action="store_true",
                        help="satisfy shards already in the checkpoint "
                             "without re-simulation; the fleet digest is "
                             "bit-identical to a cold run")
    parser.add_argument("--exact", action="store_true",
                        help="cycle-stepped reference mode instead of "
                             "fast-forward (slow; for cross-checks)")
    parser.add_argument("--no-blocks", action="store_true",
                        help="disable the basic-block translation cache")
    parser.add_argument("--no-warm", action="store_true",
                        help="cold-cache mode: workers drop every "
                             "process-level cache before each job "
                             "(measurement control arm)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="cancel the remaining queue after the first "
                             "terminal job failure")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON line per finished job plus a "
                             "final fleet line instead of the table")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the farm/fleet manifests")
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    from repro.farm import build_plan, run_farm
    from repro.farm.checkpoint import checkpoint_path
    from repro.farm.fleet import DEFAULT_BASE_SEED, plan_identity, \
        write_fleet_manifests
    from repro.farm.jobs import JobState

    base_seed = args.seed if args.seed is not None else DEFAULT_BASE_SEED
    plan = build_plan(
        args.runs, _arches(args.arch), base_seed=base_seed,
        n_samples=args.samples, n_measurements=args.measurements,
        n_blocks=args.blocks, window_cycles=args.window,
        clock_hz=args.clock_hz, fast_forward=not args.exact,
        translation_blocks=not args.no_blocks)
    checkpoint = args.checkpoint
    if checkpoint is None and args.resume:
        checkpoint = checkpoint_path(args.runs_dir, "farm",
                                     plan_identity(plan, base_seed))

    tty = sys.stdout.isatty()

    def on_job(job, done, total):
        if args.json:
            payload = {"type": "job", "job_id": job.job_id,
                       "shard_index": job.spec.shard_index,
                       "arch": job.spec.arch, "seed": job.spec.seed,
                       "state": job.state.value, "attempts": job.attempts,
                       "resumed": job.resumed,
                       "done": done, "total": total}
            if job.retries:
                payload["retries"] = job.retry_summary()
            if job.result is not None:
                payload.update(
                    stats_digest=job.result.stats_digest,
                    total_cycles=job.result.stats_summary["total_cycles"],
                    deadline_misses=job.result.deadline_misses,
                    worker_id=job.result.worker_id,
                    wall_time_s=job.result.wall_time_s)
            if job.error is not None:
                payload["error"] = job.error.strip().splitlines()[-1]
            _emit_json_line(payload)
            return
        line = (f"farm {done}/{total}  shard {job.spec.shard_index:>3} "
                f"[{job.spec.arch}] {job.state.value}"
                + (" (resumed)" if job.resumed else "")
                + (f" ({job.attempts} attempts)"
                   if job.attempts > 1 else ""))
        if tty:
            print(f"\r\x1b[2K{line}", end="", flush=True)
        else:
            print(line, flush=True)

    fleet = run_farm(plan, workers=args.workers, base_seed=base_seed,
                     max_retries=args.retries, warm=not args.no_warm,
                     fail_fast=args.fail_fast, on_job=on_job,
                     job_timeout_s=args.timeout,
                     heartbeat_timeout_s=args.heartbeat_timeout,
                     checkpoint=checkpoint, resume=args.resume)
    if tty and not args.json:
        print()

    if not args.no_manifest:
        write_fleet_manifests(fleet, directory=args.runs_dir)

    if args.json:
        _emit_json_line({"type": "fleet", "digest": fleet.digest(),
                         "summary": fleet.fleet_summary(),
                         "warm_reports": fleet.warm_reports})
    else:
        print(_farm_summary_table(fleet), flush=True)
        for job in fleet.failed():
            error = (job.error or "").strip().splitlines()
            print(f"shard {job.spec.shard_index} FAILED after "
                  f"{job.attempts} attempt(s): "
                  f"{error[-1] if error else 'unknown error'}",
                  file=sys.stderr)
    return 1 if any(job.state is JobState.FAILED
                    for job in fleet.jobs) else 0


def _csv_values(parser, option: str, text: str, convert):
    try:
        return tuple(convert(item.strip()) for item in text.split(",")
                     if item.strip())
    except ValueError:
        parser.error(f"{option} expects a comma-separated list, "
                     f"got {text!r}")


def cmd_dse(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dse",
        description="Sweep the design space (arch x cores x IM/DM banks "
                    "x LUT mapping x tech node x supply), rank every "
                    "point with the calibrated analytical model, "
                    "escalate the Pareto front to cycle-accurate "
                    "simulation, and write the front artifact plus a "
                    "dse manifest record.")
    parser.add_argument("--arch", choices=_ARCH_CHOICES, default="all",
                        help="architecture families to sweep "
                             "(default: all three)")
    parser.add_argument("--cores", default="1,2,4,8", metavar="LIST",
                        help="core counts (default: 1,2,4,8)")
    parser.add_argument("--im-banks", default="4,8,16", metavar="LIST",
                        help="IM bank counts for the shared-IM designs "
                             "(default: 4,8,16; mc-ref is pinned to one "
                             "bank per core)")
    parser.add_argument("--dm-banks", default="8,16,32", metavar="LIST",
                        help="DM bank counts (default: 8,16,32)")
    parser.add_argument("--mappings", default="private-lut,shared-lut",
                        metavar="LIST",
                        help="Huffman-LUT mappings (default: both)")
    parser.add_argument("--nodes", default="90", metavar="LIST",
                        help="technology nodes in nm (default: 90; "
                             "65/45/32 scale by the ITRS-style tables "
                             "and dominate the 90 nm points)")
    parser.add_argument("--voltages", default="1.2,1.0,0.8,0.65,0.5",
                        metavar="LIST",
                        help="supply voltages (default: five DVFS "
                             "points from nominal to threshold)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="farm workers for escalation (default: 1)")
    parser.add_argument("--no-escalate", action="store_true",
                        help="analytical ranking only; skip the "
                             "cycle-accurate escalation")
    parser.add_argument("--escalate-all", action="store_true",
                        help="escalate every structural family, not "
                             "just the front (fidelity measurements)")
    parser.add_argument("--max-escalations", type=int, default=None,
                        metavar="N",
                        help="escalation budget (default: 15%% of the "
                             "sweep)")
    parser.add_argument("--exact", action="store_true",
                        help="cycle-stepped simulations instead of "
                             "fast-forward (slow; for cross-checks)")
    parser.add_argument("--no-blocks", action="store_true",
                        help="disable the basic-block translation cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="sweep-point cache directory "
                             "(default: RUNS_DIR/dse)")
    parser.add_argument("--no-cache", action="store_true",
                        help="evaluate every point from scratch and "
                             "persist nothing")
    parser.add_argument("--front-out", metavar="FILE", default=None,
                        help="Pareto-front artifact path "
                             "(default: RUNS_DIR/dse/pareto_front.json)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="front rows to print (default: 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON line per front point plus a "
                             "final summary line")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the dse manifest record")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    cores = _csv_values(parser, "--cores", args.cores, int)
    im_banks = _csv_values(parser, "--im-banks", args.im_banks, int)
    dm_banks = _csv_values(parser, "--dm-banks", args.dm_banks, int)
    mappings = _csv_values(parser, "--mappings", args.mappings, str)
    nodes = _csv_values(parser, "--nodes", args.nodes, int)
    voltages = _csv_values(parser, "--voltages", args.voltages, float)

    from repro.dse import build_space, run_dse, dse_manifest_record, \
        write_artifact
    from repro.obs.manifest import write_manifest
    from repro.platform import set_default_fast_forward
    if not args.exact:
        # The anchor simulations behind the analytical model are
        # bit-identical in fast-forward mode and several times faster.
        set_default_fast_forward(True)

    points, rejected = build_space(
        arches=tuple(_arches(args.arch)), cores=cores, im_banks=im_banks,
        dm_banks=dm_banks, mappings=mappings, nodes=nodes,
        voltages=voltages)
    if not points:
        parser.error("the requested axes produced no feasible design "
                     "points")

    def log(message):
        if not args.json:
            print(message, flush=True)

    if rejected:
        log(f"{len(rejected)} infeasible axis combinations rejected "
            f"(e.g. {rejected[0]['reason']})")

    cache_dir = None if args.no_cache else (
        args.cache_dir if args.cache_dir is not None
        else pathlib.Path(args.runs_dir) / "dse")
    result = run_dse(
        points, cache_dir=cache_dir, escalate=not args.no_escalate,
        escalate_policy="all" if args.escalate_all else "front",
        max_escalations=args.max_escalations, workers=args.workers,
        fast_forward=not args.exact,
        translation_blocks=not args.no_blocks, log=log)

    front_out = args.front_out if args.front_out is not None \
        else pathlib.Path(args.runs_dir) / "dse" / "pareto_front.json"
    write_artifact(result, front_out)
    if not args.no_manifest:
        write_manifest(dse_manifest_record(result),
                       directory=args.runs_dir)

    if args.json:
        for record in result.front:
            _emit_json_line({"type": "front", "point": record["point"],
                             "metrics": record["metrics"],
                             "cached": record["cached"]})
        _emit_json_line({"type": "dse", "digest": result.digest(),
                         "counters": result.counters,
                         "fidelity": result.fidelity,
                         "front_out": str(front_out)})
        return 0

    top = result.front[:max(args.top, 0)]
    print(f"\nPareto front ({len(result.front)} of "
          f"{len(result.records)} points; showing {len(top)}):")
    print(f"{'architecture':<28} {'node':>5} {'V':>5} {'nJ/sample':>10} "
          f"{'MOps/s':>8} {'mm^2':>6} {'sim':>4}")
    for record in top:
        point = record["point"]
        metrics = record["metrics"]
        label = (f"{point['arch']}/c{point['n_cores']}"
                 f"/im{point['im_banks']}/dm{point['dm_banks']}"
                 f"/{point['mapping'].removesuffix('-lut')}")
        escalated = record["structural_hash"] in result.escalations
        print(f"{label:<28} {point['tech_nm']:>4}n {point['voltage']:>5.2f} "
              f"{metrics['energy_per_sample_nj']:>10.2f} "
              f"{metrics['throughput_mops']:>8.1f} "
              f"{metrics['area_mm2']:>6.2f} "
              f"{'yes' if escalated else '-':>4}")
    counters = result.counters
    print(f"\nevaluated {counters['analytical_evaluated']} points "
          f"({counters['analytical_cache_hits']} cached), escalated "
          f"{counters['escalations_run']} "
          f"(+{counters['escalation_cache_hits']} cached) of "
          f"{counters['front_families']} frontier families "
          f"(budget {counters['escalation_budget']})")
    fidelity = result.fidelity
    if fidelity["escalated_families"]:
        rank = fidelity["rank_correlation"]
        print(f"fidelity over {fidelity['escalated_families']} "
              f"escalated families: cycle accuracy "
              f"{fidelity['cycle_accuracy']:.1%}, energy-rank "
              f"correlation "
              f"{'n/a' if rank is None else format(rank, '.3f')}")
    print(f"front artifact: {front_out}")
    return 0


def _fault_label(fault: tuple) -> str:
    """Compact one-line rendering of a trial's fault descriptors."""
    parts = []
    for entry in fault:
        bits = [entry["kind"]]
        if "core" in entry:
            bits.append(f"c{entry['core']}")
        if "bank" in entry:
            bits.append(f"b{entry['bank']}")
        if "index" in entry:
            bits.append(f"i{entry['index']}")
        if "mask" in entry:
            bits.append(f"^{entry['mask']:#06x}")
        bits.append(f"@{entry['cycle']}")
        parts.append(" ".join(bits))
    return "; ".join(parts)


def _faults_summary_table(campaign) -> str:
    from repro.resilience import OUTCOMES
    counts = campaign.outcome_counts()
    total = len(campaign.results)
    lines = [
        f"fault campaign — {total}/{len(campaign.specs)} trial(s) "
        f"classified, {campaign.workers} worker(s), "
        f"{campaign.wall_time_s:.2f} s wall"
        + (f", {campaign.resumed} resumed" if campaign.resumed else "")
        + (f", {campaign.timeouts} worker timeout(s)"
           if campaign.timeouts else "")
        + (f", {campaign.crashes} worker crash(es)"
           if campaign.crashes else ""),
        f"{'outcome':<10}{'count':>7}{'rate':>9}",
    ]
    for outcome in OUTCOMES:
        rate = counts[outcome] / total if total else 0.0
        lines.append(f"{outcome:<10}{counts[outcome]:>7}{rate:>9.1%}")
    lines.append(f"{'trial':>6} {'outcome':<9} {'cycles':>9}  fault")
    for result in campaign.results:
        cycles = result.cycles if result.cycles >= 0 else "-"
        lines.append(f"{result.trial:>6} {result.outcome:<9} "
                     f"{cycles:>9}  {_fault_label(result.fault)}")
    for report in campaign.degradations():
        lines.append(
            f"degradation: core {report['dead_core']} dead, lead "
            f"remapped to core {report['survivor']} "
            f"({'verified' if report['remap_verified'] else 'MISMATCH'}), "
            f"throughput x{report['throughput_factor']:.3f}, "
            f"{report['deadline_misses']} deadline miss(es)")
    lines.append(f"campaign digest: {campaign.digest()}")
    return "\n".join(lines)


def cmd_faults(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Run a deterministic fault-injection campaign "
                    "(seeded bit flips, stuck and dead cores) over the "
                    "farm scheduler, classify every trial (masked / sdc "
                    "/ detected / hang), measure dead-core graceful "
                    "degradation, and write a fault manifest record.")
    parser.add_argument("--trials", type=int, default=24, metavar="N",
                        help="number of fault trials (default: 24)")
    parser.add_argument("--arch", choices=_ARCH_CHOICES[:-1],
                        default="mc-ref",
                        help="platform under test (default: mc-ref)")
    parser.add_argument("--campaign-seed", type=int, default=2012,
                        metavar="SEED",
                        help="fault-plan seed; per-trial faults derive "
                             "deterministically from (seed, trial)")
    parser.add_argument("--seed", type=int, default=2012, metavar="SEED",
                        help="ECG recording seed (default: 2012)")
    parser.add_argument("--samples", type=int, default=64,
                        help="ECG block length (default: 64 — campaign "
                             "trials are many, so the geometry is small)")
    parser.add_argument("--measurements", type=int, default=32,
                        help="compressed measurements per block "
                             "(default: 32)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes (default: 2)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="requeue a crashed/failed trial up to N "
                             "times (default: 1)")
    parser.add_argument("--watchdog", type=int, default=0,
                        metavar="CYCLES",
                        help="sync-watchdog window; 0 derives it from "
                             "the golden run (cycles/4, min 4096)")
    parser.add_argument("--max-cycles", type=int, default=0,
                        metavar="CYCLES",
                        help="per-trial cycle budget; 0 derives "
                             "4x the golden run")
    parser.add_argument("--clock-hz", type=float, default=1e6,
                        help="node clock for degradation deadline "
                             "budgets (default: 1e6)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-trial wall-clock cap; an overrunning "
                             "trial has its worker killed and is "
                             "requeued with cause 'timeout'")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill a worker whose heartbeat goes silent "
                             "this long and requeue its trial with "
                             "cause 'heartbeat'")
    parser.add_argument("--checkpoint", metavar="FILE", default=None,
                        help="append every classified trial to this "
                             "checkpoint JSONL (default with --resume: "
                             "derived from the campaign under "
                             "RUNS_DIR/checkpoints/)")
    parser.add_argument("--resume", action="store_true",
                        help="satisfy trials already in the checkpoint "
                             "without re-simulation; the campaign digest "
                             "is bit-identical to a cold run")
    parser.add_argument("--max-sdc", type=float, default=None,
                        metavar="RATE",
                        help="exit 1 if the silent-data-corruption rate "
                             "exceeds this fraction")
    parser.add_argument("--exact", action="store_true",
                        help="cycle-stepped reference mode instead of "
                             "fast-forward (slow; the campaign digest "
                             "must not change)")
    parser.add_argument("--no-blocks", action="store_true",
                        help="disable the basic-block translation cache")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON line per classified trial "
                             "plus a final campaign line instead of the "
                             "table")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the fault manifest record")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.max_sdc is not None and not 0.0 <= args.max_sdc <= 1.0:
        parser.error("--max-sdc expects a fraction in [0, 1]")

    from repro.farm.checkpoint import checkpoint_path
    from repro.farm.jobs import JobState
    from repro.resilience import (build_campaign, campaign_identity,
                                  run_campaign, write_campaign_manifest)

    specs = build_campaign(
        args.trials, args.arch, campaign_seed=args.campaign_seed,
        n_samples=args.samples, n_measurements=args.measurements,
        seed=args.seed, fast_forward=not args.exact,
        translation_blocks=not args.no_blocks, watchdog=args.watchdog,
        max_cycles=args.max_cycles, clock_hz=args.clock_hz)
    checkpoint = args.checkpoint
    if checkpoint is None and args.resume:
        checkpoint = checkpoint_path(args.runs_dir, "faults",
                                     campaign_identity(specs))

    tty = sys.stdout.isatty()

    def on_trial(job, done, total):
        if args.json:
            payload = {"type": "trial", "trial": job.spec.trial,
                       "state": job.state.value, "attempts": job.attempts,
                       "resumed": job.resumed, "done": done,
                       "total": total}
            if job.retries:
                payload["retries"] = job.retry_summary()
            if job.result is not None:
                payload.update(outcome=job.result.outcome,
                               fault=list(job.result.fault),
                               cycles=job.result.cycles,
                               worker_id=job.result.worker_id,
                               wall_time_s=job.result.wall_time_s)
            if job.error is not None:
                payload["error"] = job.error.strip().splitlines()[-1]
            _emit_json_line(payload)
            return
        outcome = job.result.outcome if job.result is not None \
            else job.state.value
        line = (f"faults {done}/{total}  trial {job.spec.trial:>3} "
                f"{outcome}"
                + (" (resumed)" if job.resumed else ""))
        if tty:
            print(f"\r\x1b[2K{line}", end="", flush=True)
        else:
            print(line, flush=True)

    campaign = run_campaign(
        specs, workers=args.workers, max_retries=args.retries,
        on_trial=on_trial, job_timeout_s=args.timeout,
        heartbeat_timeout_s=args.heartbeat_timeout,
        checkpoint=checkpoint, resume=args.resume)
    if tty and not args.json:
        print()

    if not args.no_manifest:
        write_campaign_manifest(campaign, directory=args.runs_dir)

    sdc_rate = campaign.sdc_rate()
    if args.json:
        _emit_json_line({"type": "campaign", "digest": campaign.digest(),
                         "outcomes": campaign.outcome_counts(),
                         "sdc_rate": sdc_rate,
                         "trials": len(campaign.results),
                         "resumed": campaign.resumed,
                         "worker_crashes": campaign.crashes,
                         "worker_timeouts": campaign.timeouts,
                         "wall_time_s": campaign.wall_time_s})
    else:
        print(_faults_summary_table(campaign), flush=True)
    for job in campaign.failed():
        error = (job.error or "").strip().splitlines()
        print(f"trial {job.spec.trial} FAILED after {job.attempts} "
              f"attempt(s): {error[-1] if error else 'unknown error'}",
              file=sys.stderr)
    if any(job.state is JobState.FAILED for job in campaign.jobs) \
            or not campaign.ok:
        return 1
    if args.max_sdc is not None and sdc_rate > args.max_sdc:
        print(f"SDC rate {sdc_rate:.1%} exceeds --max-sdc "
              f"{args.max_sdc:.1%}", file=sys.stderr)
        return 1
    return 0


def cmd_regress(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro regress",
        description="Detect cross-revision drift (or same-revision "
                    "nondeterminism) in the run manifests; exits "
                    "non-zero on any finding.")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--baseline", metavar="DIR", default=None,
                        help="compare the newest record per run identity "
                             "against this manifest directory instead of "
                             "scanning one directory's history")
    parser.add_argument("--format", choices=("text", "json", "markdown"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE")
    from repro.obs.regress import DEFAULT_KINDS
    parser.add_argument("--kinds", default=",".join(sorted(DEFAULT_KINDS)),
                        help="comma-separated record kinds to compare "
                             f"(default: {','.join(sorted(DEFAULT_KINDS))}; "
                             "benchmark timings are never reproducible)")
    parser.add_argument("--min-groups", type=int, default=0,
                        help="fail unless at least this many run "
                             "identities had something to compare "
                             "(guards CI against scanning an empty "
                             "manifest and passing vacuously)")
    args = parser.parse_args(argv)

    from repro.errors import ConfigurationError
    from repro.obs import run_regression
    if args.baseline is not None and not (
            pathlib.Path(args.baseline) / "manifest.jsonl").is_file():
        raise ConfigurationError(
            f"baseline manifest not found: {args.baseline}/manifest.jsonl")
    kinds = tuple(kind.strip() for kind in args.kinds.split(",")
                  if kind.strip())
    report = run_regression(args.runs_dir, baseline_dir=args.baseline,
                            kinds=kinds, min_groups=args.min_groups)
    rendered = report.render(args.format)
    print(rendered)
    if args.output is not None:
        pathlib.Path(args.output).write_text(rendered + "\n",
                                             encoding="utf-8")
    return 0 if report.ok else 1


_SUBCOMMANDS = {
    "experiment": cmd_experiment,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "watch": cmd_watch,
    "farm": cmd_farm,
    "dse": cmd_dse,
    "faults": cmd_faults,
    "regress": cmd_regress,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    from repro.errors import ReproError
    try:
        if argv and argv[0] in _SUBCOMMANDS:
            return _SUBCOMMANDS[argv[0]](argv[1:])
        # Historical interface: bare experiment ids
        # (repro-experiment table1).
        return cmd_experiment(argv)
    except ReproError as exc:
        # Usage/configuration errors render as one line, never a
        # traceback; exit 2 matches argparse's own usage-error code so
        # callers can distinguish "bad invocation" (2) from "a gate
        # failed" (1).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
