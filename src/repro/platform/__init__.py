"""The evaluated multi-core platforms.

Three 8-core configurations (paper Sections III and IV):

* ``mc-ref`` — the PATMOS 2011 reference: private per-core instruction
  banks, shared 16-bank data memory behind the D-Xbar.
* ``ulpmc-int`` — the proposed architecture with the instruction memory
  shared through the I-Xbar and *interleaved* across its 8 banks.
* ``ulpmc-bank`` — the proposed architecture with instructions packed into
  the fewest banks and the unused banks power-gated.
"""

from repro.platform.config import (
    ArchConfig,
    ARCH_NAMES,
    MC_REF,
    ULPMC_INT,
    ULPMC_BANK,
    build_config,
)
from repro.platform.fast_forward import FastForwardEngine
from repro.platform.multicore import (
    Benchmark,
    MultiCoreSystem,
    MulticoreSimulator,
    SimulationResult,
    build_platform,
    program_artifacts,
    program_cache_clear,
    program_cache_size,
    program_cache_stats,
    set_default_fast_forward,
    set_default_translation_blocks,
)
from repro.platform.stats import SimulationStats
from repro.platform.streaming import StreamReport, run_stream
from repro.platform.tracing import Trace, render_trace, sync_profile, \
    trace_run

__all__ = [
    "StreamReport",
    "run_stream",
    "Trace",
    "render_trace",
    "sync_profile",
    "trace_run",
    "ArchConfig",
    "ARCH_NAMES",
    "MC_REF",
    "ULPMC_INT",
    "ULPMC_BANK",
    "build_config",
    "Benchmark",
    "FastForwardEngine",
    "MultiCoreSystem",
    "MulticoreSimulator",
    "SimulationResult",
    "build_platform",
    "program_artifacts",
    "program_cache_clear",
    "program_cache_size",
    "program_cache_stats",
    "set_default_fast_forward",
    "set_default_translation_blocks",
    "SimulationStats",
]
