"""Execution tracing: the simulator's counterpart of the paper's
post-layout trace files.

The paper's flow (Fig. 4) simulates the routed design and feeds the
"resulting trace file" into power analysis.  Our power model consumes
aggregate counters instead, but a per-cycle trace is still the tool one
reaches for when studying synchronisation: it shows, cycle by cycle,
which PC every core fetched, who stalled, and where broadcasts happened.

:func:`trace_run` wraps a :class:`~repro.platform.multicore.MultiCoreSystem`
run and records a window of cycles; :func:`render_trace` pretty-prints it
(one line per cycle, one column per core, ``*`` marking stalls), and
:func:`sync_profile` reduces a full trace to per-cycle group counts —
the quantity that decides instruction-broadcast effectiveness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.platform.multicore import Benchmark, MultiCoreSystem


@dataclass(frozen=True)
class TraceCycle:
    """One recorded cycle: per-core (pc, stalled) or None if halted."""

    cycle: int
    cores: tuple


@dataclass
class Trace:
    """A recorded window of execution."""

    arch: str
    cycles: list[TraceCycle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)


def trace_run(system: MultiCoreSystem, benchmark: Benchmark,
              start: int = 0, length: int = 200,
              max_cycles: int = 20_000_000) -> Trace:
    """Run ``benchmark`` on ``system`` recording cycles [start, start+length).

    The observer hooks the I-Xbar's once-per-cycle arbitration call — it
    only *reads* machine state, so the traced run is cycle-identical to
    an untraced one (a test asserts this).
    """
    trace = Trace(arch=system.config.name)
    window_end = start + length
    cycle_box = {"n": 0}
    original_arbitrate = system.ixbar.arbitrate

    def observing_arbitrate(requests):
        granted = original_arbitrate(requests)
        cycle = cycle_box["n"]
        if start <= cycle < window_end:
            stalled = {request.master for request in requests
                       if (request.master, False) not in granted}
            snapshot = tuple(
                None if core.halted else (core.pc, pid in stalled)
                for pid, core in enumerate(system.cores))
            trace.cycles.append(TraceCycle(cycle=cycle, cores=snapshot))
        cycle_box["n"] += 1
        return granted

    system.ixbar.arbitrate = observing_arbitrate
    try:
        system.run(benchmark, max_cycles=max_cycles)
    finally:
        system.ixbar.arbitrate = original_arbitrate
    return trace


def render_trace(trace: Trace, width: int = 6) -> str:
    """One line per cycle; ``*`` marks a stalled core, ``-`` a halted one."""
    n_cores = len(trace.cycles[0].cores) if trace.cycles else 0
    header = "cycle " + "".join(f"core{i}".rjust(width + 1)
                                for i in range(n_cores))
    lines = [header]
    for record in trace.cycles:
        cells = []
        for entry in record.cores:
            if entry is None:
                cells.append("-".rjust(width + 1))
            else:
                pc, stalled = entry
                text = f"{pc:#05x}" + ("*" if stalled else " ")
                cells.append(text.rjust(width + 1))
        lines.append(f"{record.cycle:5d} " + "".join(cells))
    return "\n".join(lines)


def sync_profile(trace: Trace) -> list[int]:
    """Per-cycle count of distinct PCs among running cores.

    1 means full lockstep (maximum instruction-broadcast benefit); 8
    means complete desynchronisation.
    """
    profile = []
    for record in trace.cycles:
        pcs = Counter(entry[0] for entry in record.cores
                      if entry is not None)
        profile.append(len(pcs))
    return profile
