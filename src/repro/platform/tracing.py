"""Execution tracing: the simulator's counterpart of the paper's
post-layout trace files.

The paper's flow (Fig. 4) simulates the routed design and feeds the
"resulting trace file" into power analysis.  Our power model consumes
aggregate counters instead, but a per-cycle trace is still the tool one
reaches for when studying synchronisation: it shows, cycle by cycle,
which PC every core fetched, who stalled, and where broadcasts happened.

:func:`trace_run` records a window of cycles through the probe bus
(:mod:`repro.obs.probes`) — it subscribes to ``core.retire`` and
``core.stall``, so it works identically in cycle-stepped and
fast-forward execution (the engine synthesises per-cycle events for the
stretches it batch-commits).  :func:`render_trace` pretty-prints a trace
(one line per cycle, one column per core, ``*`` marking stalls), and
:func:`sync_profile` reduces it to per-cycle PC-group counts — the
quantity that decides instruction-broadcast effectiveness.

For Perfetto/Chrome-trace export of a full run, see
:class:`repro.obs.perfetto.TraceRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.multicore import Benchmark, MultiCoreSystem


@dataclass(frozen=True)
class TraceCycle:
    """One recorded cycle: per-core (pc, stalled) or None if halted."""

    cycle: int
    cores: tuple


@dataclass
class Trace:
    """A recorded window of execution."""

    arch: str
    cycles: list[TraceCycle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)


def trace_run(system: MultiCoreSystem, benchmark: Benchmark,
              start: int = 0, length: int = 200,
              max_cycles: int = 20_000_000) -> Trace:
    """Run ``benchmark`` on ``system`` recording cycles [start, start+length).

    The recorder only *subscribes* to probe events — it never touches
    machine state — so the traced run is cycle-identical to an untraced
    one (a test asserts this).  Cycle numbers are 0-based.  Unlike the
    pre-probe-bus implementation, cycles executed by the fast-forward
    engine are recorded too (the engine emits synthesised per-cycle
    events), so ``fast_forward=True`` systems trace exactly like
    cycle-stepped ones.
    """
    bus = system.probe_bus()
    n_cores = system.config.n_cores
    window_end = start + length
    rows: dict[int, list] = {}

    def record(cycle, pid, pc, stalled):
        if start <= cycle < window_end:
            row = rows.get(cycle)
            if row is None:
                rows[cycle] = row = [None] * n_cores
            row[pid] = (pc, stalled)

    handlers = {
        "core.retire": lambda cycle, pid, pc: record(cycle, pid, pc, False),
        "core.stall": lambda cycle, pid, pc: record(cycle, pid, pc, True),
    }
    with bus.subscribed(handlers):
        system.run(benchmark, max_cycles=max_cycles)
    return Trace(arch=system.config.name,
                 cycles=[TraceCycle(cycle=cycle, cores=tuple(rows[cycle]))
                         for cycle in sorted(rows)])


def render_trace(trace: Trace, width: int = 6) -> str:
    """One line per cycle; ``*`` marks a stalled core, ``-`` a halted one.

    An empty trace renders as a single placeholder line rather than
    raising (traces of windows past the end of a run are legal).
    """
    if not trace.cycles:
        return f"(empty trace: {trace.arch or 'no cycles recorded'})"
    n_cores = len(trace.cycles[0].cores)
    header = "cycle " + "".join(f"core{i}".rjust(width + 1)
                                for i in range(n_cores))
    lines = [header]
    for record in trace.cycles:
        cells = []
        for entry in record.cores:
            if entry is None:
                cells.append("-".rjust(width + 1))
            else:
                pc, stalled = entry
                text = f"{pc:#05x}" + ("*" if stalled else " ")
                cells.append(text.rjust(width + 1))
        lines.append(f"{record.cycle:5d} " + "".join(cells))
    return "\n".join(lines)


def sync_profile(trace: Trace) -> list[int]:
    """Per-cycle count of distinct PCs among running cores.

    1 means full lockstep (maximum instruction-broadcast benefit); 8
    means complete desynchronisation.  Cycles with *no* running core
    (all entries ``None``, possible in hand-built or padded traces) are
    skipped — counting them as zero-PC cycles would deflate every
    statistic derived from the profile.
    """
    profile = []
    for record in trace.cycles:
        pcs = {entry[0] for entry in record.cores if entry is not None}
        if pcs:
            profile.append(len(pcs))
    return profile
