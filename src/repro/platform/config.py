"""Architecture configurations for the three evaluated platforms."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.memory.layout import (
    DataMemoryLayout,
    IMOrganization,
    InstructionMemoryLayout,
)


@dataclass(frozen=True)
class ArchConfig:
    """Complete structural description of one platform.

    Defaults correspond to the paper's designs: 8 TamaRISC cores, 96 kB of
    instruction memory in 8 banks (4096 24-bit words each) and 64 kB of
    data memory in 16 banks (2048 16-bit words each).

    ``instr_broadcast`` / ``data_broadcast`` exist so the ablations of
    Section IV-C2 (e.g. "with only the broadcasting mechanism implemented
    in the I-Xbar") can be reproduced; both default to the full proposed
    design.
    """

    name: str
    im_org: IMOrganization
    n_cores: int = 8
    im_banks: int = 8
    im_bank_words: int = 4096
    dm_banks: int = 16
    dm_bank_words: int = 2048
    dm_shared_words_per_bank: int = 768
    instr_broadcast: bool = True
    data_broadcast: bool = True
    im_power_gating: bool = False

    def __post_init__(self):
        if self.im_org == IMOrganization.PRIVATE:
            if self.im_banks != self.n_cores:
                raise ConfigurationError(
                    "private IM needs one bank per core")
            if self.im_power_gating:
                raise ConfigurationError(
                    "mc-ref cannot gate IM banks: every core needs its "
                    "own program copy")
        if self.im_power_gating and self.im_org != IMOrganization.BANKED:
            raise ConfigurationError(
                "power gating requires the banked IM organisation "
                "(interleaving touches every bank)")

    # -- derived layouts ---------------------------------------------------------

    def im_layout(self) -> InstructionMemoryLayout:
        return InstructionMemoryLayout(
            organization=self.im_org,
            banks=self.im_banks,
            bank_words=self.im_bank_words,
        )

    def dm_layout(self) -> DataMemoryLayout:
        return DataMemoryLayout(
            banks=self.dm_banks,
            bank_words=self.dm_bank_words,
            n_cores=self.n_cores,
            shared_words_per_bank=self.dm_shared_words_per_bank,
        )

    @property
    def has_ixbar(self) -> bool:
        """mc-ref wires cores directly to their banks; ulpmc adds the I-Xbar."""
        return self.im_org != IMOrganization.PRIVATE

    @property
    def im_bytes(self) -> int:
        return self.im_banks * self.im_bank_words * 3

    @property
    def dm_bytes(self) -> int:
        return self.dm_banks * self.dm_bank_words * 2


#: The reference architecture of Dogan et al., PATMOS 2011.
MC_REF = ArchConfig(name="mc-ref", im_org=IMOrganization.PRIVATE,
                    instr_broadcast=False)

#: Proposed architecture, interleaved instruction mapping.
ULPMC_INT = ArchConfig(name="ulpmc-int", im_org=IMOrganization.INTERLEAVED)

#: Proposed architecture, banked instruction mapping with power gating.
ULPMC_BANK = ArchConfig(name="ulpmc-bank", im_org=IMOrganization.BANKED,
                        im_power_gating=True)

_BY_NAME = {
    MC_REF.name: MC_REF,
    ULPMC_INT.name: ULPMC_INT,
    ULPMC_BANK.name: ULPMC_BANK,
}

#: Names of the three evaluated architectures, in paper order.
ARCH_NAMES = tuple(_BY_NAME)


def build_config(name: str, **overrides) -> ArchConfig:
    """Look up one of the paper's architectures, optionally overridden.

    >>> build_config("ulpmc-int", data_broadcast=False).data_broadcast
    False
    """
    if name not in _BY_NAME:
        raise ConfigurationError(
            f"unknown architecture {name!r}; expected one of {ARCH_NAMES}")
    config = _BY_NAME[name]
    return replace(config, **overrides) if overrides else config
