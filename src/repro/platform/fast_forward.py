"""Conflict-free fast-forward engine for the platform simulator.

The cycle-stepped loop in :mod:`repro.platform.multicore` pays full
request/arbitrate/commit machinery every cycle, yet on the evaluated
workloads the overwhelming majority of cycles are *conflict-free*: every
request is granted immediately (mc-ref fetches from private banks;
ulpmc-int/-bank fetch in lockstep and broadcast; the MMU keeps private
data in per-core banks).  In a conflict-free cycle the crossbars make no
decisions — arbiters are not consulted, nobody stalls — so the cycle's
entire effect on architectural state and statistics can be computed
directly.

:class:`FastForwardEngine` exploits that: while every running core sits
at an instruction boundary it previews all memory requests of the next
cycle, *proves* the cycle conflict-free, and commits every core through
the decode-cached dispatch table of :mod:`repro.tamarisc.dispatch`.  The
moment a cycle *could* conflict (two non-mergeable requests meet in one
bank, or a lockstep broadcast is not available) the engine hands the
fully-prepared cycle back to the exact cycle-stepped loop, which replays
it through the real crossbars and round-robin arbiters.

Exactness contract (enforced by ``tests/platform``):

* Architectural state — registers, flags, PCs, data memory — is
  bit-identical to the reference loop after every cycle.
* Every :class:`~repro.platform.stats.SimulationStats` field is
  reconstructed exactly: cycles, per-core retired/stall/halted_at,
  bank accesses, deliveries, broadcasts and savings, conflict events
  (always zero in fast cycles, by construction), per-master bank
  transitions, MMU access mixes and sync cycles.
* Arbiter pointers are untouched: the reference loop only advances them
  on conflicts, which the fast path never commits.
* Error behaviour matches cycle-for-cycle, including the exact messages
  for running off the program, address-range violations and
  ``max_cycles`` exhaustion.

The engine batches its statistics in local counters and flushes them
into the shared crossbar/MMU/system objects when it returns (also on
exceptions), so a simulation may interleave fast and exact stretches
freely.
"""

from __future__ import annotations

from repro.errors import CycleLimitError, SimulationError
from repro.memory.layout import IMOrganization, PRIVATE_BASE
from repro.tamarisc import blocks as tblocks

#: Sentinel distinguishing "no cached verdict" from "block unusable".
_UNSET = object()

#: Block entries at one PC before the engine attempts to grow a loop
#: trace from there (also the retry cadence while profile data is still
#: too thin).  Tests lower it to exercise the trace layer on tiny runs.
TRACE_ENTRY_THRESHOLD = 64

#: Minimum observations of a successor edge before a trace may cross
#: it.  Loops that flaky would thrash (build, bail, rebuild).
TRACE_MIN_EDGE = 24

#: Anchor coverage: the (up to two) arms leaving the anchor must carry
#: at least 15/16 of its observed exits.
TRACE_SPLIT_NUM, TRACE_SPLIT_DEN = 15, 16

#: Chain dominance: inside an arm each block's followed successor must
#: carry at least 7/8 of that block's observed exits (loop exits taken
#: roughly every dozen iterations still leave a large win; the bailed
#: iteration is rolled back and replayed exactly).
TRACE_CHAIN_NUM, TRACE_CHAIN_DEN = 7, 8


class FastForwardEngine:
    """Batch-commits provably conflict-free cycles for one system."""

    def __init__(self, system, compiled, decoded=None, img_hash=None,
                 translation_blocks=False, loop_traces=True):
        self.system = system
        config = system.config
        n = config.n_cores
        self.n = n
        self.compiled = compiled
        self.im_private = config.im_org == IMOrganization.PRIVATE
        self.im_interleaved = config.im_org == IMOrganization.INTERLEAVED
        self.im_banks = config.im_banks
        self.im_bank_words = config.im_bank_words
        self.instr_broadcast = config.instr_broadcast
        self.data_broadcast = config.data_broadcast
        dm = system.dm_layout
        self.dm_banks_n = dm.banks
        self.dm_layout = dm
        self.shared_words = dm.shared_words
        self.swb = dm.shared_words_per_bank
        self.pwb = dm.private_words_per_bank
        self.pwc = dm.private_words_per_core
        self.core_banks = [dm.core_banks(i) for i in range(n)]
        # Scratch per-core arrays, reused every cycle.
        self._handlers = [None] * n
        self._dr_bank = [-1] * n
        self._dr_off = [0] * n
        self._dw_bank = [-1] * n
        self._dw_off = [0] * n
        self._im_bank = [0] * n
        # Diagnostics (not part of SimulationStats).
        self.fast_cycles = 0
        self.fallbacks = 0
        # ---- translation-block layer (see repro.tamarisc.blocks) ----
        self.translation_blocks = bool(translation_blocks) \
            and decoded is not None and img_hash is not None
        self._decoded = decoded
        self._img_hash = img_hash
        # Blocks batch whole lockstep stretches, so they are only legal
        # when the per-cycle proof would accept every lockstep fetch:
        # private I-banks or an instruction broadcast bus.  Without
        # either, single-core stretches still qualify.
        self._blocks_static = self.translation_blocks \
            and (self.im_private or self.instr_broadcast)
        self._block_env = (self.pwc, self.pwb, self.swb, self.shared_words,
                           self.dm_banks_n, self.data_broadcast)
        self._block_recs: dict[int, object] = {}
        # Position-indexed scratch for the generated memory phases.
        self._brb = [0] * n
        self._bro = [0] * n
        self._bwb = [0] * n
        self._bwo = [0] * n
        # Block diagnostics (manifest/metrics surface).
        self.block_entries = 0
        self.blocks_compiled = 0
        self.block_cycles = 0
        self.block_conflicts = 0
        # ---- loop-trace layer (cycles in the block graph) ----
        # Traces only ever run unobserved (probed runs keep the
        # per-cycle-shaped event synthesis of the block/cycle paths),
        # but their state lives here so profile data survives stretches.
        # ``loop_traces=False`` suppresses the layer even unobserved —
        # the overhead benchmark uses it to time a bare run of the same
        # shape an observed run takes.
        self.loop_traces = bool(loop_traces)
        self._trace_recs: dict[int, list] = {}
        self._trace_tried: set[int] = set()
        self._succ: dict[int, dict[int, int]] = {}
        self._pc_entries: dict[int, int] = {}
        self.trace_entries = 0
        self.traces_built = 0
        self.trace_cycles = 0

    def _block_record(self, pc):
        """Build (and cache) the execution record for the block at ``pc``.

        Returns ``None`` when the block cannot be fused (first
        instruction unsupported); the advance loop then keeps using the
        per-cycle path for that PC.
        """
        # Count per-engine installations, not global-cache misses: the
        # process-wide block cache outlives the run, so a freshness-based
        # count depends on what ran earlier in the process and diverges
        # between back-to-back runs (the bench identity gate diffs their
        # metric registries bit-for-bit).  Both callers guard on
        # ``_block_recs``, so this fires once per unique PC per engine.
        block, _ = tblocks.get_block(pc, self._img_hash, self._decoded)
        self.blocks_compiled += 1
        if block.total == 0:
            self._block_recs[pc] = None
            return None
        run_fast, run_obs = block.build(
            self._block_env, self.dm_layout, self.core_banks,
            [bank.storage for bank in self.system.dmem.banks],
            self._brb, self._bro, self._bwb, self._bwo,
            self._dr_bank, self._dr_off, self._dw_bank, self._dw_off)
        if self.im_private:
            fb_seq = None
            fb_cum = None
        else:
            if self.im_interleaved:
                fb_seq = tuple((pc + t) % self.im_banks
                               for t in range(block.total))
            else:
                fb_seq = tuple((pc + t) // self.im_bank_words
                               for t in range(block.total))
            # fb_cum[j]: bank transitions *inside* the first j+1 fetches.
            fb_cum = [0] * block.total
            for t in range(1, block.total):
                fb_cum[t] = fb_cum[t - 1] + (fb_seq[t] != fb_seq[t - 1])
        record = (block, block.total, run_fast, run_obs, block.handlers,
                  fb_seq, fb_cum, block.terminator == "hlt")
        self._block_recs[pc] = record
        return record

    def _block_for_trace(self, pc):
        """The block record at ``pc`` (building it if needed), or None."""
        rec = self._block_recs.get(pc, _UNSET)
        if rec is _UNSET:
            rec = self._block_record(pc)
        return rec

    def _walk_arm(self, start, first, total):
        """Follow the dominant-successor chain from ``first`` back to
        ``start``.  Returns the ``[(block, expected_taken), ...]`` chain,
        ``None`` for "profile still too thin, retry later", or ``False``
        for a structural dead end (never retry)."""
        chain = []
        pc = first
        seen = {start}
        while pc != start:
            if pc in seen or len(chain) >= tblocks.MAX_TRACE_BLOCKS:
                return False
            seen.add(pc)
            rec = self._block_for_trace(pc)
            if rec is None or rec[0].terminator != "br":
                return False
            block = rec[0]
            edges = self._succ.get(pc)
            if not edges:
                return None
            nxt = max(edges, key=edges.get)
            count = edges[nxt]
            if count < TRACE_MIN_EDGE or count * TRACE_CHAIN_DEN \
                    < sum(edges.values()) * TRACE_CHAIN_NUM:
                return None
            instr = block.instrs[-1]
            branch_pc = (block.start + block.n_body) & 0x7FFF
            taken, fallthrough = tblocks._branch_targets(instr, branch_pc)
            if nxt == taken:
                expected = True
            elif nxt == fallthrough:
                expected = False
            else:
                return False
            chain.append((block, expected))
            total += block.total
            if total > tblocks.MAX_TRACE_INSTRS:
                return False
            pc = nxt
        return chain

    def _build_trace(self, start):
        """Grow, compile and register a loop trace anchored at ``start``.

        The anchor's hot successor edges (one or both branch directions)
        each grow a dominant-successor chain back to ``start``; the
        resulting shape goes to :func:`repro.tamarisc.blocks.build_trace`.
        *Structural* failures (non-branch terminators, unfusable paths,
        chains that leave the loop) are remembered in ``_trace_tried``
        so the attempt is never repeated; thin profile data just waits
        for more entries.
        """
        rec = self._block_for_trace(start)
        if rec is None or rec[0].terminator != "br":
            self._trace_tried.add(start)
            return None
        anchor = rec[0]
        edges = self._succ.get(start)
        if not edges:
            return None
        hot = [(pc, count) for pc, count in edges.items()
               if count >= TRACE_MIN_EDGE]
        hot.sort(key=lambda item: -item[1])
        hot = hot[:2]
        if not hot or sum(count for __, count in hot) * TRACE_SPLIT_DEN \
                < sum(edges.values()) * TRACE_SPLIT_NUM:
            return None
        instr = anchor.instrs[-1]
        branch_pc = (anchor.start + anchor.n_body) & 0x7FFF
        taken, fallthrough = tblocks._branch_targets(instr, branch_pc)
        arms_spec = []
        for nxt, __ in hot:
            if nxt == taken:
                expected = True
            elif nxt == fallthrough:
                expected = False
            else:
                self._trace_tried.add(start)
                return None
            chain = self._walk_arm(start, nxt, anchor.total)
            if chain is None:
                return None
            if chain is False:
                self._trace_tried.add(start)
                return None
            arms_spec.append((expected, chain))
        # Sample the lockstep cores at the anchor: registers and flags
        # that already differ across cores seed the uniform-variant
        # partition (build_trace treats everything they taint as
        # per-core).  Uniformity is re-checked at every dispatch, so a
        # lucky sample only costs a fallback, never correctness.
        cores = [core for core in self.system.cores
                 if not core.halted and core.pc == start]
        percore_regs = frozenset()
        percore_flags = frozenset()
        if len(cores) > 1:
            base = cores[0]
            percore_regs = frozenset(
                index for index in range(len(base.regs))
                if any(core.regs[index] != base.regs[index]
                       for core in cores[1:]))
            percore_flags = frozenset(
                bit for bit in "czvn"
                if any(getattr(core.flags, bit)
                       != getattr(base.flags, bit)
                       for core in cores[1:]))
        trace = tblocks.build_trace(anchor, arms_spec, percore_regs,
                                    percore_flags)
        if trace is None:
            self._trace_tried.add(start)
            return None
        run = trace.build(
            self._block_env, self.dm_layout, self.core_banks,
            [bank.storage for bank in self.system.dmem.banks])
        if self.im_private:
            fb0 = None
            arm_consts = None
        else:
            arm_consts = []
            fb0 = None
            for index in range(len(trace.arms)):
                pcs = trace.arm_pcs(index)
                if self.im_interleaved:
                    fb_seq = [p % self.im_banks for p in pcs]
                else:
                    fb_seq = [p // self.im_bank_words for p in pcs]
                if fb0 is None:
                    fb0 = fb_seq[0]
                internal = sum(fb_seq[t] != fb_seq[t - 1]
                               for t in range(1, len(fb_seq)))
                arm_consts.append(
                    (internal, int(fb_seq[-1] != fb0), fb_seq[-1]))
            if len(arm_consts) == 1:
                arm_consts.append((0, 0, 0))
            arm_consts = tuple(arm_consts)
        # rec = [run, max_period, fb0, ((internal, wrap, last_bank) per
        #        arm) | None, entries, declines]
        record = [run, trace.max_period, fb0, arm_consts, 0, 0]
        self._trace_recs[start] = record
        self.traces_built += 1
        return record

    def block_summary(self):
        """Diagnostics dict for run manifests and benchmark records."""
        entries = self.block_entries
        fast = self.fast_cycles
        return {
            "enabled": self.translation_blocks,
            "entries": entries,
            "compiled": self.blocks_compiled,
            "hit_rate": (entries - self.blocks_compiled) / entries
            if entries else 0.0,
            "block_cycles": self.block_cycles,
            "conflicts": self.block_conflicts,
            "lockstep_fraction": self.block_cycles / fast if fast else 0.0,
            "traces": self.traces_built,
            "trace_entries": self.trace_entries,
            "trace_cycles": self.trace_cycles,
        }

    def advance(self, running, attempts, core_stats, cycle, sync_cycles,
                max_cycles, barrier=None):
        """Commit conflict-free cycles until a potential conflict or halt.

        Preconditions: every core in ``running`` sits at an instruction
        boundary (no latched partial grants).  On a potential conflict
        the cycle is *not* consumed: all attempts are prefilled (with
        MMU accounting already applied, as ``_new_attempt`` would) and
        the caller's exact loop replays the cycle through the crossbars.
        Returns the updated ``(cycle, sync_cycles)``.

        ``barrier`` (when not None) is a cycle the engine must not
        commit past: the call returns exactly at ``cycle >= barrier``
        with every core at an instruction boundary, so the caller can
        mutate architectural state (fault injection) and re-enter.
        """
        system = self.system
        cores = system.cores
        compiled = self.compiled
        program_len = len(compiled)
        dbanks = system.dmem.banks
        layout = self.dm_layout
        cbanks = self.core_banks
        n = self.n
        im_private = self.im_private
        im_interleaved = self.im_interleaved
        im_banks = self.im_banks
        im_bank_words = self.im_bank_words
        instr_broadcast = self.instr_broadcast
        data_broadcast = self.data_broadcast
        shared_words = self.shared_words
        dbn = self.dm_banks_n
        swb = self.swb
        pwb = self.pwb
        pwc = self.pwc

        handlers = self._handlers
        dr_bank = self._dr_bank
        dr_off = self._dr_off
        dw_bank = self._dw_bank
        dw_off = self._dw_off
        im_bank = self._im_bank

        # Observability: per-cycle events are synthesised here so a
        # probed run sees the identical event stream in either execution
        # mode (the trace/metric differential tests enforce this).  All
        # flags are hoisted once per stretch; unprobed runs pay only
        # these local-boolean checks.  Hot events take the raw-append
        # ring fast path (ap_* bound list.append) when the bus grants
        # it, per-event emit otherwise.
        bus = system.probes
        observing = bus is not None and bus.active
        p_retire = observing and bus.wants("core.retire")
        p_mmu = observing and bus.wants("mmu.translate")
        p_im_bc = observing and bus.wants("im.broadcast")
        p_dm_bc = observing and bus.wants("dm.broadcast")
        p_ff = observing and bus.wants("ff.exit")
        p_ffb = observing and bus.wants("ff.block")
        # Telemetry windowing: same boundary protocol as the exact loop
        # (flush, then emit the snapshot).  The block path additionally
        # refuses to enter a block that would commit past the next
        # boundary — the observed block variant is single-pass
        # (j <= rec[1]), so the gate guarantees boundaries are hit
        # exactly, never jumped over.
        win = bus.window_cycles if observing else 0
        p_win = win > 0 and bus.wants("telemetry.window")
        ap_retire = ap_mmu = ap_im_bc = ap_dm_bc = None
        mk_retire = rt_data = rt_ring = im_bc_data = None
        emit_retire = emit_mmu = False  # per-event emit() fallbacks
        seg_stride = 0  # forces a fresh ring mark on the first commit
        if observing:
            if p_retire:
                rt_ring = bus.batch("core.retire")
                if rt_ring is not None:
                    ap_retire = rt_ring.data.append
                    mk_retire = rt_ring.marks.append
                    rt_data = rt_ring.data
                else:
                    emit_retire = True
            if p_mmu:
                ring = bus.batch("mmu.translate")
                if ring is not None:
                    ap_mmu = ring.data.append
                else:
                    emit_mmu = True
            if p_im_bc:
                ring = bus.batch("im.broadcast")
                ap_im_bc = ring.data.append if ring is not None else None
                im_bc_data = ring.data if ring is not None else None
            if p_dm_bc:
                ring = bus.batch("dm.broadcast")
                ap_dm_bc = ring.data.append if ring is not None else None
            if bus.wants("ff.enter"):
                bus.emit("ff.enter", cycle)
        entered_at = cycle

        # Local stat accumulators, flushed on every exit path.
        im_acc = im_del = im_bc = im_sv = 0
        dm_acc = dm_del = dm_bc = dm_sv = 0
        dreads = dwrites = 0
        itrans = [0] * n
        dtrans = [0] * n
        ilast = list(system.ixbar._last_bank)
        dlast = list(system.dxbar._last_bank)
        mmu_t = [0] * n
        mmu_p = [0] * n
        mmu_s = [0] * n

        # Translation-block layer locals.
        blocks_any = self.translation_blocks
        blocks_static = self._blocks_static
        block_recs = self._block_recs
        # Loop-trace locals.  Profiling (successor edges, per-PC entry
        # counts) and trace execution are both unobserved-only: probed
        # runs must keep synthesising the per-cycle event stream.
        profiling = blocks_any and self.loop_traces and not observing
        trace_recs = self._trace_recs
        succ = self._succ
        pc_entries = self._pc_entries
        succ_pc = -1
        succ_cycle = -1
        # After a successful trace run the PC is back at the anchor but
        # the *next* iteration is exactly the one that bailed, so an
        # immediate re-entry would be a guaranteed decline.  Skip one
        # attempt; any other block entry re-arms the trace.
        trace_skip = -1
        # Slots 0-5 are batched DM stats, 6 the fault-offset channel,
        # 7 the conflict-offset channel (offset *within* the block; the
        # return value alone cannot flag conflicts once self-looping
        # blocks commit several iterations per call), 8-10 the trace
        # layer's per-call arm report (iterations per arm, last
        # committed arm) for fetch-transition accounting.
        bacc = [0, 0, 0, 0, 0, 0, -1, -1, 0, 0, 0]
        entries_before = self.block_entries
        compiled_before = self.blocks_compiled
        bcycles_before = self.block_cycles

        run_list = sorted(running)
        run_cores = [cores[pid] for pid in run_list]
        limit = max_cycles if barrier is None \
            else (barrier if barrier < max_cycles else max_cycles)
        try:
            while run_list:
                if barrier is not None and cycle >= barrier:
                    return cycle, sync_cycles
                if cycle >= max_cycles:
                    raise CycleLimitError(
                        f"benchmark {system.benchmark.name!r} did not "
                        f"finish within {max_cycles} cycles on "
                        f"{system.config.name}")

                n_run = len(run_list)

                # ---- translation-block fast path ----
                # When every running core sits at the same PC (or one
                # core runs free) the whole straight-line block starting
                # there commits in a single specialised call.  Within
                # the block every cycle is a lockstep fetch by
                # construction; divergence can only happen at the
                # terminator, after which this check simply fails and
                # the per-cycle machinery takes over.
                if blocks_static or (blocks_any and n_run == 1):
                    first_pc = run_cores[0].pc
                    entering = first_pc < program_len
                    if entering and n_run > 1:
                        for core in run_cores:
                            if core.pc != first_pc:
                                entering = False
                                break
                    # ---- loop-trace fast path ----
                    # A registered trace at this PC commits whole loop
                    # iterations with per-core scalar-register code; it
                    # declines (j == 0) when the very first iteration
                    # leaves the traced path, leaving state untouched
                    # for the block path below.  Committed iterations
                    # are all-lockstep, all-private and conflict-free
                    # by construction, so the statistics fold to
                    # compile-time constants times the iteration count.
                    if profiling and entering \
                            and first_pc != trace_skip:
                        trace_skip = -1
                        trec = trace_recs.get(first_pc)
                        if trec is not None \
                                and cycle + trec[1] <= limit:
                            self.trace_entries += 1
                            trec[4] += 1
                            j = trec[0](run_cores, mmu_t, mmu_p, mmu_s,
                                        dlast, dtrans, bacc,
                                        limit - cycle)
                            if j:
                                cycle += j
                                self.fast_cycles += j
                                self.trace_cycles += j
                                if n_run > 1:
                                    sync_cycles += j
                                im_del += j * n_run
                                if trec[2] is None:  # private I-banks
                                    im_acc += j * n_run
                                    for pid in run_list:
                                        last = ilast[pid]
                                        if last is not None \
                                                and last != pid:
                                            itrans[pid] += 1
                                        ilast[pid] = pid
                                else:
                                    im_acc += j
                                    if n_run > 1:
                                        im_bc += j
                                        im_sv += j * (n_run - 1)
                                    # Per-arm iteration counts (and
                                    # the last arm run) reported by
                                    # the generated code; fetch-bank
                                    # transitions fold from per-arm
                                    # constants.  The wrap between
                                    # consecutive iterations counts on
                                    # the *earlier* iteration's arm,
                                    # and the final iteration has no
                                    # following wrap.
                                    it_a = bacc[8]
                                    it_b = bacc[9]
                                    arm_a, arm_b = trec[3]
                                    delta_base = \
                                        arm_a[0] * it_a \
                                        + arm_b[0] * it_b \
                                        + arm_a[1] * it_a \
                                        + arm_b[1] * it_b
                                    if bacc[10]:
                                        delta_base -= arm_a[1]
                                        fbl = arm_a[2]
                                    else:
                                        delta_base -= arm_b[1]
                                        fbl = arm_b[2]
                                    fb0 = trec[2]
                                    for pid in run_list:
                                        last = ilast[pid]
                                        delta = delta_base
                                        if last is not None \
                                                and last != fb0:
                                            delta += 1
                                        if delta:
                                            itrans[pid] += delta
                                        ilast[pid] = fbl
                                succ_pc = -1
                                trace_skip = first_pc
                                continue
                            trec[5] += 1
                            if trec[5] * 4 > trec[4] + 8:
                                # Thrashing trace: the loop no longer
                                # behaves as profiled.  Drop it and
                                # block rebuilds at this anchor.
                                del trace_recs[first_pc]
                                self._trace_tried.add(first_pc)
                    if entering:
                        rec = block_recs.get(first_pc, _UNSET)
                        if rec is _UNSET:
                            rec = self._block_record(first_pc)
                        if rec is not None \
                                and cycle + rec[1] <= limit \
                                and (not p_win
                                     or cycle % win + rec[1] <= win):
                            # rec = (block, total, run_fast, run_obs,
                            #        handlers, fb_seq, fb_cum, halts)
                            self.block_entries += 1
                            if profiling:
                                count = pc_entries.get(first_pc, 0) + 1
                                pc_entries[first_pc] = count
                                if count % TRACE_ENTRY_THRESHOLD == 0 \
                                        and first_pc not in trace_recs \
                                        and first_pc not in \
                                        self._trace_tried:
                                    self._build_trace(first_pc)
                            total = rec[1]
                            bacc[6] = -1
                            bacc[7] = -1
                            raise_exc = None
                            try:
                                if observing:
                                    j = rec[3](run_cores, mmu_t, mmu_p,
                                               mmu_s, dlast, dtrans,
                                               bacc, cycle, bus.emit,
                                               ap_mmu, emit_mmu,
                                               ap_dm_bc, p_dm_bc)
                                else:
                                    j = rec[2](run_cores, mmu_t, mmu_p,
                                               mmu_s, dlast, dtrans,
                                               bacc,
                                               limit - cycle)
                            except SimulationError as exc:
                                # Address fault at block offset
                                # bacc[6]: the generated code already
                                # patched PC/retired; account for the
                                # committed prefix, then re-raise.
                                j = bacc[6]
                                if j <= 0:
                                    raise
                                raise_exc = exc
                            if j:
                                cycle_before = cycle
                                cycle += j
                                self.fast_cycles += j
                                self.block_cycles += j
                                if n_run > 1:
                                    sync_cycles += j
                                if observing:
                                    if ap_retire is not None:
                                        # Blocks are lockstep stretches
                                        # with consecutive fetch PCs:
                                        # continue (or open) an RLE
                                        # segment and bulk-append.
                                        if seg_stride != -n_run:
                                            mk_retire(cycle_before)
                                            mk_retire(len(rt_data))
                                            mk_retire(-n_run)
                                            rt_ring.rle = True
                                            seg_stride = -n_run
                                        rt_data.extend(
                                            range(first_pc,
                                                  first_pc + j))
                                    elif emit_retire:
                                        for t in range(j):
                                            cy = cycle_before + t
                                            pc_t = first_pc + t
                                            for pid in run_list:
                                                bus.emit("core.retire",
                                                         cy, pid, pc_t)
                                im_del += j * n_run
                                fb_seq = rec[5]
                                if fb_seq is None:  # private I-banks
                                    im_acc += j * n_run
                                    for pid in run_list:
                                        last = ilast[pid]
                                        if last is not None \
                                                and last != pid:
                                            itrans[pid] += 1
                                        ilast[pid] = pid
                                else:
                                    im_acc += j
                                    if n_run > 1:
                                        im_bc += j
                                        im_sv += j * (n_run - 1)
                                        if p_im_bc:
                                            if ap_im_bc is not None:
                                                im_bc_data.extend(
                                                    (n_run,) * j)
                                            else:
                                                for t in range(j):
                                                    bus.emit(
                                                        "im.broadcast",
                                                        cycle_before + t,
                                                        fb_seq[t], n_run)
                                    if j <= total:
                                        internal = rec[6][j - 1]
                                        fbj = fb_seq[j - 1]
                                    else:
                                        # Self-looping block: q full
                                        # iterations plus an r-cycle
                                        # prefix; fetch banks repeat
                                        # fb_seq cyclically, with one
                                        # extra transition per wrap iff
                                        # last and first banks differ.
                                        q, r = divmod(j, total)
                                        starts = q + (1 if r else 0)
                                        internal = q * rec[6][total - 1] \
                                            + (rec[6][r - 1] if r else 0) \
                                            + (starts - 1) \
                                            * (fb_seq[total - 1]
                                               != fb_seq[0])
                                        fbj = fb_seq[(j - 1) % total]
                                    fb0 = fb_seq[0]
                                    for pid in run_list:
                                        last = ilast[pid]
                                        delta = internal
                                        if last is not None \
                                                and last != fb0:
                                            delta += 1
                                        if delta:
                                            itrans[pid] += delta
                                        ilast[pid] = fbj
                                # Flush cadence (timing-only): match
                                # the per-cycle path's 16k-cycle bound.
                                if observing and \
                                        (cycle_before >> 14) != \
                                        (cycle >> 14):
                                    bus.flush()
                                    seg_stride = 0
                            if raise_exc is not None:
                                raise raise_exc
                            if j and p_win and not cycle % win:
                                # Block ended exactly on a boundary
                                # (the entry gate excludes crossings).
                                # Emit here, before any conflict return
                                # hands control back to the exact loop.
                                bus.flush()
                                seg_stride = 0
                                bus.emit("telemetry.window", cycle,
                                         False, sync_cycles,
                                         tuple(core.retired
                                               for core in cores),
                                         tuple(cs.stall_cycles
                                               for cs in core_stats))
                            conflict_at = bacc[7]
                            if conflict_at >= 0:
                                # Potential bank conflict at that block
                                # offset: the generated code filled the
                                # pid-indexed scratch; prefill the
                                # attempts exactly like the per-cycle
                                # fallback below.
                                handler = rec[4][conflict_at]
                                for pid in run_list:
                                    attempt = attempts[pid]
                                    attempt.instr = handler.instr
                                    attempt.fetch_pc = cores[pid].pc
                                    attempt.need_if = True
                                    rb = dr_bank[pid]
                                    if rb >= 0:
                                        attempt.need_dr = True
                                        attempt.dr_loc = \
                                            (rb, dr_off[pid])
                                    else:
                                        attempt.need_dr = False
                                        attempt.dr_loc = None
                                    wb = dw_bank[pid]
                                    if wb >= 0:
                                        attempt.need_dw = True
                                        attempt.dw_loc = \
                                            (wb, dw_off[pid])
                                    else:
                                        attempt.need_dw = False
                                        attempt.dw_loc = None
                                self.fallbacks += 1
                                self.block_conflicts += 1
                                return cycle, sync_cycles
                            if profiling and j:
                                # Successor profile: back-to-back block
                                # entries (no per-cycle stretch in
                                # between) are the edges a loop trace
                                # may cross.  Conflicts and faults
                                # returned/raised above, so j is a
                                # whole number of block executions
                                # ending at the terminator here.
                                if succ_pc >= 0 \
                                        and succ_cycle == cycle_before:
                                    edges = succ.get(succ_pc)
                                    if edges is None:
                                        edges = succ[succ_pc] = {}
                                    edges[first_pc] = \
                                        edges.get(first_pc, 0) + 1
                                succ_pc = first_pc
                                succ_cycle = cycle
                            if rec[7]:  # HLT terminator
                                for pid in run_list:
                                    core_stats[pid].halted_at = cycle
                                    running.discard(pid)
                                run_list = []
                                run_cores = []
                            continue

                # ---- preview: addresses, translation, conflict proof ----
                conflict = False
                n_run = len(run_list)
                dm_map = {}
                dm_count = 0
                first_pc = cores[run_list[0]].pc
                lockstep = True
                for pid in run_list:
                    core = cores[pid]
                    pc = core.pc
                    if pc >= program_len:
                        raise SimulationError(
                            f"core {core.pid} ran off the program "
                            f"at PC {pc:#x}")
                    if pc != first_pc:
                        lockstep = False
                    handler = compiled[pc]
                    handlers[pid] = handler
                    preview = handler.preview
                    if preview is None:
                        dr_bank[pid] = -1
                        dw_bank[pid] = -1
                        continue
                    ra, wa = preview(core.regs)
                    if ra is not None:
                        mmu_t[pid] += 1
                        if ra >= PRIVATE_BASE:
                            mmu_p[pid] += 1
                            off = ra - PRIVATE_BASE
                            if off >= pwc:
                                layout.translate(pid, ra)  # exact raise
                            rb = cbanks[pid][off // pwb]
                            ro = swb + off % pwb
                            if ap_mmu is not None:
                                ap_mmu(True)
                        else:
                            mmu_s[pid] += 1
                            if ra >= shared_words:
                                layout.translate(pid, ra)  # exact raise
                            rb = ra % dbn
                            ro = ra // dbn
                            if ap_mmu is not None:
                                ap_mmu(False)
                        dr_bank[pid] = rb
                        dr_off[pid] = ro
                        if emit_mmu:
                            bus.emit("mmu.translate", cycle, pid, ra,
                                     rb, ro, ra >= PRIVATE_BASE)
                        dm_count += 1
                        entry = dm_map.get(rb)
                        if entry is None:
                            dm_map[rb] = [ro, 1, False]
                        elif entry[2] or entry[0] != ro \
                                or not data_broadcast:
                            conflict = True
                        else:
                            entry[1] += 1
                    else:
                        dr_bank[pid] = -1
                    if wa is not None:
                        mmu_t[pid] += 1
                        if wa >= PRIVATE_BASE:
                            mmu_p[pid] += 1
                            off = wa - PRIVATE_BASE
                            if off >= pwc:
                                layout.translate(pid, wa)  # exact raise
                            wb = cbanks[pid][off // pwb]
                            wo = swb + off % pwb
                            if ap_mmu is not None:
                                ap_mmu(True)
                        else:
                            mmu_s[pid] += 1
                            if wa >= shared_words:
                                layout.translate(pid, wa)  # exact raise
                            wb = wa % dbn
                            wo = wa // dbn
                            if ap_mmu is not None:
                                ap_mmu(False)
                        dw_bank[pid] = wb
                        dw_off[pid] = wo
                        if emit_mmu:
                            bus.emit("mmu.translate", cycle, pid, wa,
                                     wb, wo, wa >= PRIVATE_BASE)
                        dm_count += 1
                        if wb in dm_map:
                            conflict = True  # writes never merge
                        else:
                            dm_map[wb] = [wo, 0, True]
                    else:
                        dw_bank[pid] = -1

                # ---- instruction-side conflict proof ----
                im_map = None
                if im_private:
                    pass  # one private bank per core: conflict-free
                elif lockstep:
                    if n_run > 1 and not instr_broadcast:
                        conflict = True
                    if im_interleaved:
                        fb = first_pc % im_banks
                    else:
                        fb = first_pc // im_bank_words
                else:
                    im_map = {}
                    for pid in run_list:
                        pc = cores[pid].pc
                        if im_interleaved:
                            bank = pc % im_banks
                            off = pc // im_banks
                        else:
                            bank = pc // im_bank_words
                            off = pc % im_bank_words
                        im_bank[pid] = bank
                        entry = im_map.get(bank)
                        if entry is None:
                            im_map[bank] = [off, 1]
                        elif entry[0] != off or not instr_broadcast:
                            conflict = True
                        else:
                            entry[1] += 1

                if conflict:
                    # Hand the prepared cycle to the exact loop.  MMU
                    # accounting already happened above (once per
                    # attempt), so the loop must skip _new_attempt:
                    # prefilling instr does exactly that.
                    for pid in run_list:
                        attempt = attempts[pid]
                        attempt.instr = handlers[pid].instr
                        attempt.fetch_pc = cores[pid].pc
                        attempt.need_if = True
                        rb = dr_bank[pid]
                        if rb >= 0:
                            attempt.need_dr = True
                            attempt.dr_loc = (rb, dr_off[pid])
                        else:
                            attempt.need_dr = False
                            attempt.dr_loc = None
                        wb = dw_bank[pid]
                        if wb >= 0:
                            attempt.need_dw = True
                            attempt.dw_loc = (wb, dw_off[pid])
                        else:
                            attempt.need_dw = False
                            attempt.dw_loc = None
                    self.fallbacks += 1
                    return cycle, sync_cycles

                # ---- commit the proven conflict-free cycle ----
                cycle += 1
                self.fast_cycles += 1
                if observing:
                    if not (cycle & 0x3FFF):
                        bus.flush()  # bound ring memory on long stretches
                        seg_stride = 0
                    if ap_retire is not None:
                        # Every committed cycle retires exactly the
                        # n_run cores of run_list, so one mark covers
                        # the whole segment until n_run (or the
                        # lockstep/free-running mode) changes.  In
                        # lockstep all cores share first_pc: store it
                        # once as a run-length segment (stride -n_run);
                        # otherwise store each core's pc (stride n_run).
                        if lockstep:
                            if seg_stride != -n_run:
                                mk_retire(cycle - 1)
                                mk_retire(len(rt_data))
                                mk_retire(-n_run)
                                rt_ring.rle = True
                                seg_stride = -n_run
                            ap_retire(first_pc)
                        else:
                            if seg_stride != n_run:
                                mk_retire(cycle - 1)
                                mk_retire(len(rt_data))
                                mk_retire(n_run)
                                seg_stride = n_run
                            for c in run_cores:
                                ap_retire(c.pc)
                if lockstep and n_run > 1:
                    sync_cycles += 1

                im_del += n_run
                if im_private:
                    im_acc += n_run
                    for pid in run_list:
                        last = ilast[pid]
                        if last is not None and last != pid:
                            itrans[pid] += 1
                        ilast[pid] = pid
                elif lockstep:
                    im_acc += 1
                    if n_run > 1:
                        im_bc += 1
                        im_sv += n_run - 1
                        if p_im_bc:
                            if ap_im_bc is not None:
                                ap_im_bc(n_run)
                            else:
                                bus.emit("im.broadcast", cycle - 1,
                                         fb, n_run)
                    for pid in run_list:
                        last = ilast[pid]
                        if last is not None and last != fb:
                            itrans[pid] += 1
                        ilast[pid] = fb
                else:
                    im_acc += len(im_map)
                    for bank_id, entry in im_map.items():
                        count = entry[1]
                        if count > 1:
                            im_bc += 1
                            im_sv += count - 1
                            if p_im_bc:
                                if ap_im_bc is not None:
                                    ap_im_bc(count)
                                else:
                                    bus.emit("im.broadcast", cycle - 1,
                                             bank_id, count)
                    for pid in run_list:
                        bank = im_bank[pid]
                        last = ilast[pid]
                        if last is not None and last != bank:
                            itrans[pid] += 1
                        ilast[pid] = bank

                if dm_count:
                    dm_del += dm_count
                    dm_acc += len(dm_map)
                    for bank_id, entry in dm_map.items():
                        count = entry[1]
                        if count > 1:
                            dm_bc += 1
                            dm_sv += count - 1
                            if p_dm_bc:
                                if ap_dm_bc is not None:
                                    ap_dm_bc(count)
                                else:
                                    bus.emit("dm.broadcast", cycle - 1,
                                             bank_id, count)

                halted_any = False
                for pid in run_list:
                    core = cores[pid]
                    if emit_retire:
                        bus.emit("core.retire", cycle - 1, pid, core.pc)
                    rb = dr_bank[pid]
                    if rb >= 0:
                        value = dbanks[rb].storage[dr_off[pid]]
                        dreads += 1
                        last = dlast[pid]
                        if last is not None and last != rb:
                            dtrans[pid] += 1
                        dlast[pid] = rb
                    else:
                        value = None
                    store = handlers[pid].commit(core, value)
                    wb = dw_bank[pid]
                    if wb >= 0:
                        last = dlast[pid]
                        if last is not None and last != wb:
                            dtrans[pid] += 1
                        dlast[pid] = wb
                        if store is not None:
                            dbanks[wb].storage[dw_off[pid]] = \
                                store[1] & 0xFFFF
                            dwrites += 1
                    if core.halted:
                        core_stats[pid].halted_at = cycle
                        running.discard(pid)
                        halted_any = True
                if halted_any:
                    run_list = [pid for pid in run_list
                                if not cores[pid].halted]
                    run_cores = [cores[pid] for pid in run_list]
                if p_win and not cycle % win:
                    bus.flush()
                    seg_stride = 0
                    bus.emit("telemetry.window", cycle, False, sync_cycles,
                             tuple(core.retired for core in cores),
                             tuple(cs.stall_cycles for cs in core_stats))
            return cycle, sync_cycles
        finally:
            # Fold the generated blocks' accumulator array into the
            # stretch counters (slot 6 is the fault-offset channel).
            dm_acc += bacc[0]
            dm_del += bacc[1]
            dm_bc += bacc[2]
            dm_sv += bacc[3]
            dreads += bacc[4]
            dwrites += bacc[5]
            # No flush here: rings are shared with the cycle-stepped
            # loop and survive mode transitions; flushing every stretch
            # would pay the vectorised-drain fixed cost per fallback.
            if p_ff:
                bus.emit("ff.exit", cycle, cycle - entered_at)
            if p_ffb and self.block_entries > entries_before:
                bus.emit("ff.block", cycle,
                         self.block_entries - entries_before,
                         self.blocks_compiled - compiled_before,
                         self.block_cycles - bcycles_before)
            ix = system.ixbar.stats
            ix.bank_accesses += im_acc
            ix.deliveries += im_del
            ix.broadcasts += im_bc
            ix.broadcast_savings += im_sv
            transitions = ix.bank_transitions
            for pid in range(n):
                if itrans[pid]:
                    transitions[pid] = transitions.get(pid, 0) + itrans[pid]
            system.ixbar._last_bank[:] = ilast
            dx = system.dxbar.stats
            dx.bank_accesses += dm_acc
            dx.deliveries += dm_del
            dx.broadcasts += dm_bc
            dx.broadcast_savings += dm_sv
            transitions = dx.bank_transitions
            for pid in range(n):
                if dtrans[pid]:
                    transitions[pid] = transitions.get(pid, 0) + dtrans[pid]
            system.dxbar._last_bank[:] = dlast
            for pid in range(n):
                if mmu_t[pid]:
                    mmu = system.mmus[pid]
                    mmu.translations += mmu_t[pid]
                    mmu.private_accesses += mmu_p[pid]
                    mmu.shared_accesses += mmu_s[pid]
            system._dreads_committed += dreads
            system._dwrites_committed += dwrites
