"""Conflict-free fast-forward engine for the platform simulator.

The cycle-stepped loop in :mod:`repro.platform.multicore` pays full
request/arbitrate/commit machinery every cycle, yet on the evaluated
workloads the overwhelming majority of cycles are *conflict-free*: every
request is granted immediately (mc-ref fetches from private banks;
ulpmc-int/-bank fetch in lockstep and broadcast; the MMU keeps private
data in per-core banks).  In a conflict-free cycle the crossbars make no
decisions — arbiters are not consulted, nobody stalls — so the cycle's
entire effect on architectural state and statistics can be computed
directly.

:class:`FastForwardEngine` exploits that: while every running core sits
at an instruction boundary it previews all memory requests of the next
cycle, *proves* the cycle conflict-free, and commits every core through
the decode-cached dispatch table of :mod:`repro.tamarisc.dispatch`.  The
moment a cycle *could* conflict (two non-mergeable requests meet in one
bank, or a lockstep broadcast is not available) the engine hands the
fully-prepared cycle back to the exact cycle-stepped loop, which replays
it through the real crossbars and round-robin arbiters.

Exactness contract (enforced by ``tests/platform``):

* Architectural state — registers, flags, PCs, data memory — is
  bit-identical to the reference loop after every cycle.
* Every :class:`~repro.platform.stats.SimulationStats` field is
  reconstructed exactly: cycles, per-core retired/stall/halted_at,
  bank accesses, deliveries, broadcasts and savings, conflict events
  (always zero in fast cycles, by construction), per-master bank
  transitions, MMU access mixes and sync cycles.
* Arbiter pointers are untouched: the reference loop only advances them
  on conflicts, which the fast path never commits.
* Error behaviour matches cycle-for-cycle, including the exact messages
  for running off the program, address-range violations and
  ``max_cycles`` exhaustion.

The engine batches its statistics in local counters and flushes them
into the shared crossbar/MMU/system objects when it returns (also on
exceptions), so a simulation may interleave fast and exact stretches
freely.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.memory.layout import IMOrganization, PRIVATE_BASE


class FastForwardEngine:
    """Batch-commits provably conflict-free cycles for one system."""

    def __init__(self, system, compiled):
        self.system = system
        config = system.config
        n = config.n_cores
        self.n = n
        self.compiled = compiled
        self.im_private = config.im_org == IMOrganization.PRIVATE
        self.im_interleaved = config.im_org == IMOrganization.INTERLEAVED
        self.im_banks = config.im_banks
        self.im_bank_words = config.im_bank_words
        self.instr_broadcast = config.instr_broadcast
        self.data_broadcast = config.data_broadcast
        dm = system.dm_layout
        self.dm_banks_n = dm.banks
        self.dm_layout = dm
        self.shared_words = dm.shared_words
        self.swb = dm.shared_words_per_bank
        self.pwb = dm.private_words_per_bank
        self.pwc = dm.private_words_per_core
        self.core_banks = [dm.core_banks(i) for i in range(n)]
        # Scratch per-core arrays, reused every cycle.
        self._handlers = [None] * n
        self._dr_bank = [-1] * n
        self._dr_off = [0] * n
        self._dw_bank = [-1] * n
        self._dw_off = [0] * n
        self._im_bank = [0] * n
        # Diagnostics (not part of SimulationStats).
        self.fast_cycles = 0
        self.fallbacks = 0

    def advance(self, running, attempts, core_stats, cycle, sync_cycles,
                max_cycles):
        """Commit conflict-free cycles until a potential conflict or halt.

        Preconditions: every core in ``running`` sits at an instruction
        boundary (no latched partial grants).  On a potential conflict
        the cycle is *not* consumed: all attempts are prefilled (with
        MMU accounting already applied, as ``_new_attempt`` would) and
        the caller's exact loop replays the cycle through the crossbars.
        Returns the updated ``(cycle, sync_cycles)``.
        """
        system = self.system
        cores = system.cores
        compiled = self.compiled
        program_len = len(compiled)
        dbanks = system.dmem.banks
        layout = self.dm_layout
        cbanks = self.core_banks
        n = self.n
        im_private = self.im_private
        im_interleaved = self.im_interleaved
        im_banks = self.im_banks
        im_bank_words = self.im_bank_words
        instr_broadcast = self.instr_broadcast
        data_broadcast = self.data_broadcast
        shared_words = self.shared_words
        dbn = self.dm_banks_n
        swb = self.swb
        pwb = self.pwb
        pwc = self.pwc

        handlers = self._handlers
        dr_bank = self._dr_bank
        dr_off = self._dr_off
        dw_bank = self._dw_bank
        dw_off = self._dw_off
        im_bank = self._im_bank

        # Observability: per-cycle events are synthesised here so a
        # probed run sees the identical event stream in either execution
        # mode (the trace/metric differential tests enforce this).  All
        # flags are hoisted once per stretch; unprobed runs pay only
        # these local-boolean checks.  Hot events take the raw-append
        # ring fast path (ap_* bound list.append) when the bus grants
        # it, per-event emit otherwise.
        bus = system.probes
        observing = bus is not None and bus.active
        p_retire = observing and bus.wants("core.retire")
        p_mmu = observing and bus.wants("mmu.translate")
        p_im_bc = observing and bus.wants("im.broadcast")
        p_dm_bc = observing and bus.wants("dm.broadcast")
        p_ff = observing and bus.wants("ff.exit")
        ap_retire = ap_mmu = ap_im_bc = ap_dm_bc = None
        mk_retire = rt_data = rt_ring = None
        emit_retire = emit_mmu = False  # per-event emit() fallbacks
        seg_stride = 0  # forces a fresh ring mark on the first commit
        if observing:
            if p_retire:
                rt_ring = bus.batch("core.retire")
                if rt_ring is not None:
                    ap_retire = rt_ring.data.append
                    mk_retire = rt_ring.marks.append
                    rt_data = rt_ring.data
                else:
                    emit_retire = True
            if p_mmu:
                ring = bus.batch("mmu.translate")
                if ring is not None:
                    ap_mmu = ring.data.append
                else:
                    emit_mmu = True
            if p_im_bc:
                ring = bus.batch("im.broadcast")
                ap_im_bc = ring.data.append if ring is not None else None
            if p_dm_bc:
                ring = bus.batch("dm.broadcast")
                ap_dm_bc = ring.data.append if ring is not None else None
            if bus.wants("ff.enter"):
                bus.emit("ff.enter", cycle)
        entered_at = cycle

        # Local stat accumulators, flushed on every exit path.
        im_acc = im_del = im_bc = im_sv = 0
        dm_acc = dm_del = dm_bc = dm_sv = 0
        dreads = dwrites = 0
        itrans = [0] * n
        dtrans = [0] * n
        ilast = list(system.ixbar._last_bank)
        dlast = list(system.dxbar._last_bank)
        mmu_t = [0] * n
        mmu_p = [0] * n
        mmu_s = [0] * n

        run_list = sorted(running)
        run_cores = [cores[pid] for pid in run_list]
        try:
            while run_list:
                if cycle >= max_cycles:
                    raise SimulationError(
                        f"benchmark {system.benchmark.name!r} did not "
                        f"finish within {max_cycles} cycles on "
                        f"{system.config.name}")

                # ---- preview: addresses, translation, conflict proof ----
                conflict = False
                n_run = len(run_list)
                dm_map = {}
                dm_count = 0
                first_pc = cores[run_list[0]].pc
                lockstep = True
                for pid in run_list:
                    core = cores[pid]
                    pc = core.pc
                    if pc >= program_len:
                        raise SimulationError(
                            f"core {core.pid} ran off the program "
                            f"at PC {pc:#x}")
                    if pc != first_pc:
                        lockstep = False
                    handler = compiled[pc]
                    handlers[pid] = handler
                    preview = handler.preview
                    if preview is None:
                        dr_bank[pid] = -1
                        dw_bank[pid] = -1
                        continue
                    ra, wa = preview(core.regs)
                    if ra is not None:
                        mmu_t[pid] += 1
                        if ra >= PRIVATE_BASE:
                            mmu_p[pid] += 1
                            off = ra - PRIVATE_BASE
                            if off >= pwc:
                                layout.translate(pid, ra)  # exact raise
                            rb = cbanks[pid][off // pwb]
                            ro = swb + off % pwb
                            if ap_mmu is not None:
                                ap_mmu(True)
                        else:
                            mmu_s[pid] += 1
                            if ra >= shared_words:
                                layout.translate(pid, ra)  # exact raise
                            rb = ra % dbn
                            ro = ra // dbn
                            if ap_mmu is not None:
                                ap_mmu(False)
                        dr_bank[pid] = rb
                        dr_off[pid] = ro
                        if emit_mmu:
                            bus.emit("mmu.translate", cycle, pid, ra,
                                     rb, ro, ra >= PRIVATE_BASE)
                        dm_count += 1
                        entry = dm_map.get(rb)
                        if entry is None:
                            dm_map[rb] = [ro, 1, False]
                        elif entry[2] or entry[0] != ro \
                                or not data_broadcast:
                            conflict = True
                        else:
                            entry[1] += 1
                    else:
                        dr_bank[pid] = -1
                    if wa is not None:
                        mmu_t[pid] += 1
                        if wa >= PRIVATE_BASE:
                            mmu_p[pid] += 1
                            off = wa - PRIVATE_BASE
                            if off >= pwc:
                                layout.translate(pid, wa)  # exact raise
                            wb = cbanks[pid][off // pwb]
                            wo = swb + off % pwb
                            if ap_mmu is not None:
                                ap_mmu(True)
                        else:
                            mmu_s[pid] += 1
                            if wa >= shared_words:
                                layout.translate(pid, wa)  # exact raise
                            wb = wa % dbn
                            wo = wa // dbn
                            if ap_mmu is not None:
                                ap_mmu(False)
                        dw_bank[pid] = wb
                        dw_off[pid] = wo
                        if emit_mmu:
                            bus.emit("mmu.translate", cycle, pid, wa,
                                     wb, wo, wa >= PRIVATE_BASE)
                        dm_count += 1
                        if wb in dm_map:
                            conflict = True  # writes never merge
                        else:
                            dm_map[wb] = [wo, 0, True]
                    else:
                        dw_bank[pid] = -1

                # ---- instruction-side conflict proof ----
                im_map = None
                if im_private:
                    pass  # one private bank per core: conflict-free
                elif lockstep:
                    if n_run > 1 and not instr_broadcast:
                        conflict = True
                    if im_interleaved:
                        fb = first_pc % im_banks
                    else:
                        fb = first_pc // im_bank_words
                else:
                    im_map = {}
                    for pid in run_list:
                        pc = cores[pid].pc
                        if im_interleaved:
                            bank = pc % im_banks
                            off = pc // im_banks
                        else:
                            bank = pc // im_bank_words
                            off = pc % im_bank_words
                        im_bank[pid] = bank
                        entry = im_map.get(bank)
                        if entry is None:
                            im_map[bank] = [off, 1]
                        elif entry[0] != off or not instr_broadcast:
                            conflict = True
                        else:
                            entry[1] += 1

                if conflict:
                    # Hand the prepared cycle to the exact loop.  MMU
                    # accounting already happened above (once per
                    # attempt), so the loop must skip _new_attempt:
                    # prefilling instr does exactly that.
                    for pid in run_list:
                        attempt = attempts[pid]
                        attempt.instr = handlers[pid].instr
                        attempt.fetch_pc = cores[pid].pc
                        attempt.need_if = True
                        rb = dr_bank[pid]
                        if rb >= 0:
                            attempt.need_dr = True
                            attempt.dr_loc = (rb, dr_off[pid])
                        else:
                            attempt.need_dr = False
                            attempt.dr_loc = None
                        wb = dw_bank[pid]
                        if wb >= 0:
                            attempt.need_dw = True
                            attempt.dw_loc = (wb, dw_off[pid])
                        else:
                            attempt.need_dw = False
                            attempt.dw_loc = None
                    self.fallbacks += 1
                    return cycle, sync_cycles

                # ---- commit the proven conflict-free cycle ----
                cycle += 1
                self.fast_cycles += 1
                if observing:
                    if not (cycle & 0x3FFF):
                        bus.flush()  # bound ring memory on long stretches
                        seg_stride = 0
                    if ap_retire is not None:
                        # Every committed cycle retires exactly the
                        # n_run cores of run_list, so one mark covers
                        # the whole segment until n_run (or the
                        # lockstep/free-running mode) changes.  In
                        # lockstep all cores share first_pc: store it
                        # once as a run-length segment (stride -n_run);
                        # otherwise store each core's pc (stride n_run).
                        if lockstep:
                            if seg_stride != -n_run:
                                mk_retire(cycle - 1)
                                mk_retire(len(rt_data))
                                mk_retire(-n_run)
                                rt_ring.rle = True
                                seg_stride = -n_run
                            ap_retire(first_pc)
                        else:
                            if seg_stride != n_run:
                                mk_retire(cycle - 1)
                                mk_retire(len(rt_data))
                                mk_retire(n_run)
                                seg_stride = n_run
                            for c in run_cores:
                                ap_retire(c.pc)
                if lockstep and n_run > 1:
                    sync_cycles += 1

                im_del += n_run
                if im_private:
                    im_acc += n_run
                    for pid in run_list:
                        last = ilast[pid]
                        if last is not None and last != pid:
                            itrans[pid] += 1
                        ilast[pid] = pid
                elif lockstep:
                    im_acc += 1
                    if n_run > 1:
                        im_bc += 1
                        im_sv += n_run - 1
                        if p_im_bc:
                            if ap_im_bc is not None:
                                ap_im_bc(n_run)
                            else:
                                bus.emit("im.broadcast", cycle - 1,
                                         fb, n_run)
                    for pid in run_list:
                        last = ilast[pid]
                        if last is not None and last != fb:
                            itrans[pid] += 1
                        ilast[pid] = fb
                else:
                    im_acc += len(im_map)
                    for bank_id, entry in im_map.items():
                        count = entry[1]
                        if count > 1:
                            im_bc += 1
                            im_sv += count - 1
                            if p_im_bc:
                                if ap_im_bc is not None:
                                    ap_im_bc(count)
                                else:
                                    bus.emit("im.broadcast", cycle - 1,
                                             bank_id, count)
                    for pid in run_list:
                        bank = im_bank[pid]
                        last = ilast[pid]
                        if last is not None and last != bank:
                            itrans[pid] += 1
                        ilast[pid] = bank

                if dm_count:
                    dm_del += dm_count
                    dm_acc += len(dm_map)
                    for bank_id, entry in dm_map.items():
                        count = entry[1]
                        if count > 1:
                            dm_bc += 1
                            dm_sv += count - 1
                            if p_dm_bc:
                                if ap_dm_bc is not None:
                                    ap_dm_bc(count)
                                else:
                                    bus.emit("dm.broadcast", cycle - 1,
                                             bank_id, count)

                halted_any = False
                for pid in run_list:
                    core = cores[pid]
                    if emit_retire:
                        bus.emit("core.retire", cycle - 1, pid, core.pc)
                    rb = dr_bank[pid]
                    if rb >= 0:
                        value = dbanks[rb].storage[dr_off[pid]]
                        dreads += 1
                        last = dlast[pid]
                        if last is not None and last != rb:
                            dtrans[pid] += 1
                        dlast[pid] = rb
                    else:
                        value = None
                    store = handlers[pid].commit(core, value)
                    wb = dw_bank[pid]
                    if wb >= 0:
                        last = dlast[pid]
                        if last is not None and last != wb:
                            dtrans[pid] += 1
                        dlast[pid] = wb
                        if store is not None:
                            dbanks[wb].storage[dw_off[pid]] = \
                                store[1] & 0xFFFF
                            dwrites += 1
                    if core.halted:
                        core_stats[pid].halted_at = cycle
                        running.discard(pid)
                        halted_any = True
                if halted_any:
                    run_list = [pid for pid in run_list
                                if not cores[pid].halted]
                    run_cores = [cores[pid] for pid in run_list]
            return cycle, sync_cycles
        finally:
            # No flush here: rings are shared with the cycle-stepped
            # loop and survive mode transitions; flushing every stretch
            # would pay the vectorised-drain fixed cost per fallback.
            if p_ff:
                bus.emit("ff.exit", cycle, cycle - entered_at)
            ix = system.ixbar.stats
            ix.bank_accesses += im_acc
            ix.deliveries += im_del
            ix.broadcasts += im_bc
            ix.broadcast_savings += im_sv
            transitions = ix.bank_transitions
            for pid in range(n):
                if itrans[pid]:
                    transitions[pid] = transitions.get(pid, 0) + itrans[pid]
            system.ixbar._last_bank[:] = ilast
            dx = system.dxbar.stats
            dx.bank_accesses += dm_acc
            dx.deliveries += dm_del
            dx.broadcasts += dm_bc
            dx.broadcast_savings += dm_sv
            transitions = dx.bank_transitions
            for pid in range(n):
                if dtrans[pid]:
                    transitions[pid] = transitions.get(pid, 0) + dtrans[pid]
            system.dxbar._last_bank[:] = dlast
            for pid in range(n):
                if mmu_t[pid]:
                    mmu = system.mmus[pid]
                    mmu.translations += mmu_t[pid]
                    mmu.private_accesses += mmu_p[pid]
                    mmu.shared_accesses += mmu_s[pid]
            system._dreads_committed += dreads
            system._dwrites_committed += dwrites
