"""Simulation statistics gathered by the multi-core platform.

Everything the power model needs is collected here: committed instruction
counts (core dynamic energy), post-broadcast bank access counts (memory
dynamic energy), crossbar deliveries and bank transitions (interconnect and
instruction-path switching energy), stall cycles (clock-gated, hence free),
and the set of live IM banks (leakage with power gating).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    """Per-core activity."""

    retired: int = 0
    stall_cycles: int = 0
    halted_at: int | None = None

    @property
    def active_cycles(self) -> int:
        return self.retired


@dataclass
class SimulationStats:
    """Aggregate activity of one benchmark run."""

    arch: str = ""
    total_cycles: int = 0
    cores: list[CoreStats] = field(default_factory=list)

    # Instruction side (post-broadcast bank accesses vs delivered fetches).
    im_bank_accesses: int = 0
    im_fetches: int = 0
    im_broadcasts: int = 0
    im_broadcast_savings: int = 0
    im_conflict_events: int = 0
    im_stalled_requests: int = 0
    im_bank_transitions: int = 0
    im_banks_used: int = 0
    im_banks_gated: int = 0

    # Data side.
    dm_bank_accesses: int = 0
    dm_reads_delivered: int = 0
    dm_writes_delivered: int = 0
    dm_broadcasts: int = 0
    dm_broadcast_savings: int = 0
    dm_conflict_events: int = 0
    dm_stalled_requests: int = 0

    # MMU access mix (paper Section III-D: 76 % private / 24 % shared).
    dm_private_accesses: int = 0
    dm_shared_accesses: int = 0

    # Synchronisation: cycles in which all non-halted cores fetched the
    # same PC (precondition for instruction broadcast).
    sync_cycles: int = 0

    # -- derived ------------------------------------------------------------

    @property
    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)

    @property
    def total_stall_cycles(self) -> int:
        return sum(core.stall_cycles for core in self.cores)

    @property
    def dm_deliveries(self) -> int:
        return self.dm_reads_delivered + self.dm_writes_delivered

    @property
    def private_access_fraction(self) -> float:
        total = self.dm_private_accesses + self.dm_shared_accesses
        return self.dm_private_accesses / total if total else 0.0

    @property
    def sync_fraction(self) -> float:
        return self.sync_cycles / self.total_cycles if self.total_cycles \
            else 0.0

    @property
    def im_access_reduction_vs(self) -> float:
        """IM bank accesses saved relative to one-access-per-fetch."""
        if not self.im_fetches:
            return 0.0
        return 1.0 - self.im_bank_accesses / self.im_fetches

    def activity_rates(self) -> dict[str, float]:
        """Per-cycle activity rates consumed by the power model.

        Every rate is normalised to *total elapsed cycles*, i.e. it is the
        average number of events per clock cycle of the whole platform.
        """
        cycles = self.total_cycles or 1
        active_core_cycles = sum(core.retired for core in self.cores)
        return {
            "core_active": active_core_cycles / cycles,
            "im_access": self.im_bank_accesses / cycles,
            "im_delivery": self.im_fetches / cycles,
            "im_bank_transition": self.im_bank_transitions / cycles,
            "dm_access": self.dm_bank_accesses / cycles,
            "dm_delivery": self.dm_deliveries / cycles,
        }

    def summary(self) -> str:
        """Human-readable multi-line digest."""
        lines = [
            f"architecture        : {self.arch}",
            f"total cycles        : {self.total_cycles}",
            f"instructions retired: {self.total_retired}",
            f"stall cycles        : {self.total_stall_cycles}",
            f"sync cycles         : {self.sync_cycles}"
            f" ({100 * self.sync_fraction:.1f}%)",
            f"IM bank accesses    : {self.im_bank_accesses}"
            f" (fetches {self.im_fetches},"
            f" saved {self.im_broadcast_savings} by broadcast)",
            f"IM banks used/gated : {self.im_banks_used}/{self.im_banks_gated}",
            f"DM bank accesses    : {self.dm_bank_accesses}"
            f" (reads {self.dm_reads_delivered},"
            f" writes {self.dm_writes_delivered},"
            f" saved {self.dm_broadcast_savings} by broadcast)",
            f"DM private/shared   : {self.dm_private_accesses}/"
            f"{self.dm_shared_accesses}"
            f" ({100 * self.private_access_fraction:.1f}% private)",
        ]
        return "\n".join(lines)
