"""Streaming / duty-cycled operation of the monitoring node.

A wearable node is real-time: every 512-sample block (2.048 s at 250 Hz)
must be compressed before the next one lands.  The cores run the kernel,
``HLT``, and sleep clock-gated until the next block wakes them — this is
the execution model behind the paper's low-workload operating points
(Fig. 7's 5-500 kOps/s region *is* this duty cycling at different clock
frequencies).

:func:`run_stream` plays a multi-block recording through one platform,
verifying every block bit-exactly, and reports the timing/duty-cycle
picture at a chosen clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.platform.multicore import MultiCoreSystem, build_platform
from repro.platform.stats import SimulationStats

#: The application's sample rate (paper Section II).
SAMPLE_RATE_HZ = 250.0


@dataclass
class BlockOutcome:
    """One block's simulation outcome.

    ``block_summary`` is the fast-forward engine's translation-cache
    summary for this block (``None`` in exact mode); each block gets a
    fresh engine, so whole-stream cache totals are the sum over blocks
    (the farm's warm-cache accounting relies on this).
    """

    index: int
    stats: SimulationStats
    block_summary: dict | None = None


@dataclass
class StreamReport:
    """Aggregate of a streamed multi-block run."""

    arch: str
    clock_hz: float
    block_period_s: float
    blocks: list[BlockOutcome] = field(default_factory=list)

    @property
    def cycles_per_block(self) -> list[int]:
        return [block.stats.total_cycles for block in self.blocks]

    @property
    def worst_cycles(self) -> int:
        return max(self.cycles_per_block)

    @property
    def utilisation(self) -> float:
        """Worst-case fraction of the block period spent computing."""
        return self.worst_cycles / (self.clock_hz * self.block_period_s)

    @property
    def real_time(self) -> bool:
        return self.utilisation <= 1.0

    @property
    def min_real_time_clock_hz(self) -> float:
        """Slowest clock that still meets every block's deadline."""
        return self.worst_cycles / self.block_period_s

    # -- deadline-miss reporting ------------------------------------------

    @property
    def deadline_budget_cycles(self) -> float:
        """Cycles available per block at this clock."""
        return self.clock_hz * self.block_period_s

    def block_utilisation(self, index: int) -> float:
        """Fraction of block ``index``'s period spent computing."""
        return self.blocks[index].stats.total_cycles \
            / self.deadline_budget_cycles

    @property
    def missed_blocks(self) -> list[int]:
        """Indices of blocks whose computation overran the block period."""
        budget = self.deadline_budget_cycles
        return [block.index for block in self.blocks
                if block.stats.total_cycles > budget]

    @property
    def deadline_misses(self) -> int:
        return len(self.missed_blocks)

    def deadline_report(self) -> str:
        """One line per block: cycles, utilisation and OK/MISS verdict."""
        budget = self.deadline_budget_cycles
        lines = [f"{self.arch} @ {self.clock_hz:.4g} Hz — block budget "
                 f"{budget:.0f} cycles ({self.block_period_s:.4g} s)"]
        for block in self.blocks:
            cycles = block.stats.total_cycles
            verdict = "MISS" if cycles > budget else "ok"
            lines.append(f"  block {block.index:>3}: {cycles:>9} cycles "
                         f"({cycles / budget:7.1%})  {verdict}")
        lines.append(f"  deadline misses: {self.deadline_misses}"
                     f"/{len(self.blocks)}")
        return "\n".join(lines)

    @property
    def total_retired(self) -> int:
        return sum(block.stats.total_retired for block in self.blocks)

    def mean_stats(self) -> dict[str, float]:
        """Per-block means of the power-relevant counters."""
        blocks = len(self.blocks)
        return {
            "cycles": sum(self.cycles_per_block) / blocks,
            "im_accesses": sum(b.stats.im_bank_accesses
                               for b in self.blocks) / blocks,
            "dm_accesses": sum(b.stats.dm_bank_accesses
                               for b in self.blocks) / blocks,
            "sync_fraction": sum(b.stats.sync_fraction
                                 for b in self.blocks) / blocks,
        }


def run_stream(arch: str, series,
               clock_hz: float = 1e6,
               system: MultiCoreSystem | None = None) -> StreamReport:
    """Stream a block series through one platform, verifying each block.

    The same machine instance processes every block (program and LUTs
    stay loaded conceptually; the loader re-images them, which is free in
    the model); cores wake at block boundaries, exactly like a
    timer-driven duty-cycled node.
    """
    # Imported here: repro.kernels builds on repro.platform, so a
    # module-level import would be circular.
    from repro.kernels.benchmark import verify_result

    if not series:
        raise ConfigurationError("empty block series")
    if clock_hz <= 0:
        raise ConfigurationError("clock must be positive")
    spec = series[0].spec
    block_period = spec.n_samples / SAMPLE_RATE_HZ
    if system is None:
        system = build_platform(arch)
    report = StreamReport(arch=arch, clock_hz=clock_hz,
                          block_period_s=block_period)
    bus = system.probes
    for index, built in enumerate(series):
        result = system.run(built.benchmark)
        verify_result(built, result)
        report.blocks.append(BlockOutcome(
            index=index, stats=result.stats,
            block_summary=system.block_summary()))
        if bus is not None and bus.wants("block.done"):
            bus.emit("block.done", index, result.stats)
    return report
