"""Cycle-stepped simulator of the 8-core platforms.

Each clock cycle proceeds in two phases:

1. **Request** — every non-halted core presents the memory requests of its
   current instruction: the instruction fetch plus the previewed data read
   and/or data write (TamaRISC's three ports, all usable in one cycle).
   Requests already granted in earlier cycles stay latched and are not
   reissued.
2. **Arbitrate & commit** — the I-Xbar and D-Xbar grant at most one access
   per bank (merging same-address reads into broadcasts).  A core whose
   requests are all satisfied commits its instruction — register/flag/PC
   update and the actual data transfer; a core still missing a grant
   stalls, clock-gated, and retries next cycle ("the requests are served
   alternately while the waiting cores are stalled using clock gating",
   Section III).

Because instruction and data *contents* are deterministic, functional
transfer happens at commit time; the crossbars only decide timing and
count activity.  Addresses are stable across stalls because registers are
frozen while a core stalls (a property test asserts preview == commit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (ConfigurationError, CycleLimitError, HangError,
                          SimulationError)
from repro.interconnect.xbar import Crossbar, Request
from repro.memory.banked_memory import BankedMemory
from repro.memory.layout import IMOrganization
from repro.memory.mmu import MMU
from repro.platform.config import ArchConfig, build_config
from repro.platform.fast_forward import FastForwardEngine
from repro.platform.stats import CoreStats, SimulationStats
from repro.tamarisc.blocks import image_hash
from repro.tamarisc.cpu import Core
from repro.tamarisc.dispatch import compile_program
from repro.tamarisc.program import DataImage, Program


class _ProgramArtifacts:
    """Decode/dispatch products of one program image.

    Keyed by content hash in :data:`_PROGRAM_CACHE`: code is immutable,
    so the decoded instruction list and the compiled dispatch table can
    be shared across systems, repeated loads (a streamed run re-loads
    the same program every block) and farm jobs inside one worker
    process.  Both are read-only after construction; the dispatch table
    is built lazily so exact-mode loads never pay for it.
    """

    __slots__ = ("decoded", "_compiled")

    def __init__(self, decoded):
        self.decoded = decoded
        self._compiled = None

    def compiled(self):
        if self._compiled is None:
            self._compiled = compile_program(self.decoded)
        return self._compiled


#: Process-level program cache: ``image_hash -> _ProgramArtifacts``.
_PROGRAM_CACHE: dict[str, _ProgramArtifacts] = {}

#: Decode-cache traffic (same contract as
#: :func:`repro.tamarisc.blocks.cache_stats`: process-level, purely
#: diagnostic, never feeds a digest).
_PROGRAM_CACHE_STATS = {"program_hits": 0, "program_misses": 0}


def program_artifacts(program: Program) -> tuple[str, _ProgramArtifacts]:
    """The cached decode/dispatch artifacts for ``program``.

    Returns ``(image_hash, artifacts)``.  Farm workers call this to
    warm the decode table once per process; :meth:`MultiCoreSystem.load`
    goes through it on every load.
    """
    img = image_hash(program.words)
    artifacts = _PROGRAM_CACHE.get(img)
    if artifacts is None:
        artifacts = _ProgramArtifacts(program.decoded())
        _PROGRAM_CACHE[img] = artifacts
        _PROGRAM_CACHE_STATS["program_misses"] += 1
    else:
        _PROGRAM_CACHE_STATS["program_hits"] += 1
    return img, artifacts


def program_cache_clear() -> None:
    """Drop the decode/dispatch cache (tests, cold-cache measurements)."""
    _PROGRAM_CACHE.clear()


def program_cache_size() -> int:
    return len(_PROGRAM_CACHE)


def program_cache_stats() -> dict:
    """Snapshot of the decode-cache traffic counters."""
    return dict(_PROGRAM_CACHE_STATS)

#: Instruction words are 24-bit.
_INSTR_MASK = 0xFFFFFF

#: Process-wide default for ``MultiCoreSystem(..., fast_forward=None)``;
#: flipped by the CLI's ``--fast-forward`` flag so every experiment
#: benefits without threading the option through each call site.
_DEFAULT_FAST_FORWARD = False


def set_default_fast_forward(enabled: bool) -> None:
    """Set the process-wide default for the fast-forward execution mode."""
    global _DEFAULT_FAST_FORWARD
    _DEFAULT_FAST_FORWARD = bool(enabled)


#: Process-wide default for the fast-forward engine's translation-block
#: layer (:mod:`repro.tamarisc.blocks`).  On by default — blocks carry
#: the same bit-identity contract as the engine itself; the CLI's
#: ``--no-blocks`` escape hatch flips this off.
_DEFAULT_TRANSLATION_BLOCKS = True


def set_default_translation_blocks(enabled: bool) -> None:
    """Set the process-wide default for the translation-block layer."""
    global _DEFAULT_TRANSLATION_BLOCKS
    _DEFAULT_TRANSLATION_BLOCKS = bool(enabled)


@dataclass
class Benchmark:
    """A complete workload: one program image plus initial data."""

    name: str
    program: Program
    data: DataImage
    #: free-form metadata (expected outputs, op counts, ...)
    meta: dict = field(default_factory=dict)


@dataclass
class SimulationResult:
    """Outcome of one run: statistics plus the final machine for inspection."""

    benchmark: Benchmark
    stats: SimulationStats
    system: "MultiCoreSystem"


class _Attempt:
    """Book-keeping for one core's in-flight instruction."""

    __slots__ = ("instr", "need_if", "need_dr", "need_dw", "dr_loc",
                 "dw_loc", "fetch_pc")

    def __init__(self):
        self.instr = None
        self.need_if = False
        self.need_dr = False
        self.need_dw = False
        self.dr_loc = None
        self.dw_loc = None
        self.fetch_pc = 0


class MultiCoreSystem:
    """One platform instance: cores, MMUs, crossbars and memories.

    ``fast_forward`` enables the conflict-free fast-forward execution
    mode (:mod:`repro.platform.fast_forward`): provably conflict-free
    cycles are batch-committed through a decode-cached dispatch table,
    falling back to the exact cycle-stepped loop whenever a potential
    bank conflict is detected.  Results — architectural state and every
    :class:`SimulationStats` field — are bit-identical in either mode
    (the differential suite in ``tests/platform`` enforces this).
    ``None`` defers to the process default (see
    :func:`set_default_fast_forward`).

    ``translation_blocks`` additionally routes lockstep stretches of the
    fast path through cached basic-block translations
    (:mod:`repro.tamarisc.blocks`); it only takes effect together with
    ``fast_forward`` and carries the identical bit-identity contract.
    ``None`` defers to the process default (see
    :func:`set_default_translation_blocks`).
    """

    def __init__(self, config: ArchConfig | str,
                 fast_forward: bool | None = None,
                 translation_blocks: bool | None = None):
        if isinstance(config, str):
            config = build_config(config)
        self.config = config
        if fast_forward is None:
            fast_forward = _DEFAULT_FAST_FORWARD
        if translation_blocks is None:
            translation_blocks = _DEFAULT_TRANSLATION_BLOCKS
        self.fast_forward = bool(fast_forward)
        self.translation_blocks = bool(translation_blocks)
        #: Loop-trace layer switch (set before :meth:`load`/:meth:`run`).
        #: Traces never run observed anyway; disabling them outright
        #: gives the overhead benchmark a bare run of the observed
        #: shape to compare against.
        self.loop_traces = True
        self._ff_engine: FastForwardEngine | None = None
        self.im_layout = config.im_layout()
        self.dm_layout = config.dm_layout()
        self.cores = [Core(pid=i) for i in range(config.n_cores)]
        self.mmus = [MMU(i, self.dm_layout) for i in range(config.n_cores)]
        self.imem = BankedMemory(config.im_banks, config.im_bank_words,
                                 name="IM", word_mask=_INSTR_MASK)
        self.dmem = BankedMemory(config.dm_banks, config.dm_bank_words,
                                 name="DM")
        self.ixbar = Crossbar(config.n_cores, config.im_banks,
                              broadcast=config.instr_broadcast, name="I-Xbar")
        self.dxbar = Crossbar(config.n_cores, config.dm_banks,
                              broadcast=config.data_broadcast, name="D-Xbar")
        self.decoded = []
        self.benchmark: Benchmark | None = None
        self._dreads_committed = 0
        self._dwrites_committed = 0
        #: Probe bus (:mod:`repro.obs.probes`), lazily created by
        #: :meth:`probe_bus`.  ``None`` — the common case — keeps the
        #: run loop on its zero-instrumentation path.
        self.probes = None

    def probe_bus(self):
        """The system's :class:`~repro.obs.probes.ProbeBus` (created on
        first use).  Subscribe before :meth:`run`; an attached bus with
        no subscribers costs nothing measurable."""
        if self.probes is None:
            from repro.obs.probes import ProbeBus
            self.probes = ProbeBus()
        return self.probes

    # -- loading ------------------------------------------------------------------

    def load(self, benchmark: Benchmark) -> None:
        """Load program and data images; applies IM power gating."""
        program = benchmark.program
        if len(program) == 0:
            raise ConfigurationError("empty program")
        layout = self.im_layout
        if self.config.im_org == IMOrganization.PRIVATE:
            if len(program) > self.config.im_bank_words:
                raise ConfigurationError(
                    "program exceeds a private IM bank")
            for bank in range(self.config.im_banks):
                self.imem.load(bank, 0, program.words)
        else:
            if len(program) > layout.total_words:
                raise ConfigurationError("program exceeds instruction memory")
            for pc, word in enumerate(program.words):
                bank, offset = layout.locate(0, pc)
                self.imem.load(bank, offset, [word])
        if self.config.im_power_gating:
            used = {layout.locate(0, pc)[0] for pc in range(len(program))}
            self.imem.gate_unused(used)

        for logical, value in benchmark.data.shared.items():
            bank, offset = self.dm_layout.translate(0, logical)
            self.dmem.load(bank, offset, [value])
        for core, image in benchmark.data.private.items():
            for logical, value in image.items():
                bank, offset = self.dm_layout.translate(core, logical)
                self.dmem.load(bank, offset, [value])

        img_hash, artifacts = program_artifacts(program)
        self.decoded = artifacts.decoded
        for core in self.cores:
            core.reset(entry=program.entry)
        # A load starts a fresh measurement window (streaming runs load
        # one block after another on the same machine).
        self.ixbar.reset()
        self.dxbar.reset()
        self.imem.reset_counters()
        self.dmem.reset_counters()
        for mmu in self.mmus:
            mmu.translations = 0
            mmu.private_accesses = 0
            mmu.shared_accesses = 0
        self._dreads_committed = 0
        self._dwrites_committed = 0
        if self.fast_forward:
            self._ff_engine = FastForwardEngine(
                self, artifacts.compiled(),
                decoded=self.decoded,
                img_hash=img_hash,
                translation_blocks=self.translation_blocks,
                loop_traces=self.loop_traces)
        else:
            self._ff_engine = None
        self.benchmark = benchmark

    # -- inspection helpers ----------------------------------------------------------

    def read_logical(self, core: int, logical: int) -> int:
        """Read one data word through a core's address map (no counting)."""
        bank, offset = self.dm_layout.translate(core, logical)
        return self.dmem.peek(bank, offset)

    def read_logical_block(self, core: int, base: int, count: int) -> list[int]:
        return [self.read_logical(core, base + i) for i in range(count)]

    def block_summary(self):
        """Translation-block statistics of the last run (``None`` when
        the fast-forward engine never attached)."""
        engine = self._ff_engine
        return engine.block_summary() if engine is not None else None

    # -- simulation --------------------------------------------------------------------

    def run(self, benchmark: Benchmark | None = None,
            max_cycles: int = 20_000_000, faults=None) -> SimulationResult:
        """Run until every core executed HLT (or ``max_cycles`` elapse).

        ``faults`` (a :class:`repro.resilience.faults.FaultSession`)
        injects architectural faults at chosen cycles.  The injection
        points sit between cycles — the fast-forward engine is given
        the next fault cycle as a barrier, so both execution modes
        mutate the same architectural state at the same boundary and
        the bit-identity contract survives injection.
        """
        if benchmark is not None:
            self.load(benchmark)
        if self.benchmark is None:
            raise ConfigurationError("no benchmark loaded")

        n = self.config.n_cores
        cores = self.cores
        mmus = self.mmus
        decoded = self.decoded
        program_len = len(decoded)
        im_layout = self.im_layout
        ixbar = self.ixbar
        dxbar = self.dxbar
        dm_banks = self.dmem.banks
        core_stats = [CoreStats() for _ in range(n)]
        attempts = [_Attempt() for _ in range(n)]
        running = set(range(n))

        engine = self._ff_engine

        # Observability wiring.  With no subscriber (the common case)
        # this costs one attribute load and the per-cycle/per-event
        # local-boolean checks below — measured <2 % end-to-end by
        # benchmarks/bench_obs_overhead.py.  For each hot event the bus
        # either grants the raw-append ring fast path (batch-only
        # subscribers: ap_* is a bound list.append) or falls back to
        # per-event emit; both are hoisted once per run.
        bus = self.probes
        observing = bus is not None and bus.active
        p_retire = p_stall = p_win = hooked_mmus = False
        ap_retire = ap_stall = mk_retire = mk_stall = None
        rt_data = st_data = None
        win = 0
        if observing:
            p_retire = bus.wants("core.retire")
            p_stall = bus.wants("core.stall")
            # Telemetry windowing (repro.obs.telemetry): cross a
            # boundary -> flush the rings (so no batch spans it), then
            # emit the boundary snapshot.  Both conditions hoisted; the
            # fast-forward engine applies the same protocol.
            win = bus.window_cycles
            p_win = win > 0 and bus.wants("telemetry.window")
            if p_retire:
                ring = bus.batch("core.retire")
                if ring is not None:
                    ap_retire = ring.data.append
                    mk_retire = ring.marks.append
                    rt_data = ring.data
            if p_stall:
                ring = bus.batch("core.stall")
                if ring is not None:
                    ap_stall = ring.data.append
                    mk_stall = ring.marks.append
                    st_data = ring.data
            if bus.wants("ixbar.conflict"):
                ring = bus.batch("ixbar.conflict")
                if ring is not None:
                    ixbar.probe_conflict = (
                        lambda bank, masters, _ap=ring.data.append:
                        _ap(bus.now))
                else:
                    ixbar.probe_conflict = (
                        lambda bank, masters:
                        bus.emit("ixbar.conflict", bus.now, bank, masters))
            if bus.wants("dxbar.conflict"):
                ring = bus.batch("dxbar.conflict")
                if ring is not None:
                    dxbar.probe_conflict = (
                        lambda bank, masters, _ap=ring.data.append:
                        _ap(bus.now))
                else:
                    dxbar.probe_conflict = (
                        lambda bank, masters:
                        bus.emit("dxbar.conflict", bus.now, bank, masters))
            if bus.wants("im.broadcast"):
                ring = bus.batch("im.broadcast")
                if ring is not None:
                    ixbar.probe_broadcast = (
                        lambda bank, width, _ap=ring.data.append:
                        _ap(width))
                else:
                    ixbar.probe_broadcast = (
                        lambda bank, width:
                        bus.emit("im.broadcast", bus.now, bank, width))
            if bus.wants("dm.broadcast"):
                ring = bus.batch("dm.broadcast")
                if ring is not None:
                    dxbar.probe_broadcast = (
                        lambda bank, width, _ap=ring.data.append:
                        _ap(width))
                else:
                    dxbar.probe_broadcast = (
                        lambda bank, width:
                        bus.emit("dm.broadcast", bus.now, bank, width))
            if bus.wants("mmu.translate"):
                hooked_mmus = True
                ring = bus.batch("mmu.translate")
                if ring is not None:
                    for mmu in mmus:
                        mmu.probe_ring = ring.data
                else:
                    def mmu_probe(pid, logical, bank, offset, private):
                        bus.emit("mmu.translate", bus.now, pid, logical,
                                 bank, offset, private)
                    for mmu in mmus:
                        mmu.probe = mmu_probe

        cycle = 0
        sync_cycles = 0
        # Fault-injection hooks: ``fault_next`` is the next cycle an
        # injection is due (a barrier for the fast-forward engine),
        # ``stuck`` the live set of clock-stuck cores, ``watchdog`` the
        # hang window (cycles without a single commit fleet-wide).
        fault_next = faults.next_cycle if faults is not None else None
        stuck = faults.stuck_cores if faults is not None else None
        watchdog = faults.watchdog_window if faults is not None else 0
        last_progress = 0
        try:
            while running:
                if fault_next is not None and cycle >= fault_next:
                    faults.apply_due(self, cycle)
                    fault_next = faults.next_cycle
                    # Injection may have swapped the program image or
                    # disabled the engine; refresh the hoisted locals.
                    engine = self._ff_engine
                    decoded = self.decoded
                    program_len = len(decoded)
                    for pid in sorted(faults.dead_cores):
                        if pid in running:
                            core_stats[pid].halted_at = cycle
                            attempts[pid] = _Attempt()
                            running.discard(pid)
                    last_progress = cycle
                    if not running:
                        break
                if engine is not None:
                    # The engine needs every running core at an instruction
                    # boundary (no latched partial grants); mid-stall cycles
                    # stay on the exact path below.
                    for pid in running:
                        if attempts[pid].instr is not None:
                            break
                    else:
                        cycle, sync_cycles = engine.advance(
                            running, attempts, core_stats, cycle,
                            sync_cycles, max_cycles, fault_next)
                        last_progress = cycle
                        if not running:
                            break
                        if fault_next is not None and cycle >= fault_next:
                            continue  # inject at the boundary, re-enter
                if cycle >= max_cycles:
                    raise CycleLimitError(
                        f"benchmark {self.benchmark.name!r} did not finish "
                        f"within {max_cycles} cycles on {self.config.name}")
                cycle += 1
                if observing:
                    if not (cycle & 0x3FFF):
                        bus.flush()  # bound ring memory on long runs
                    now = cycle - 1
                    bus.now = now
                    # One (cycle, start_offset, 0) mark per cycle;
                    # cycles that end up contributing no events
                    # reconstruct to a zero count, so unconditional
                    # marking is correct and keeps the per-event sites
                    # allocation-free.
                    if mk_retire is not None:
                        mk_retire(now)
                        mk_retire(len(rt_data))
                        mk_retire(0)
                    if mk_stall is not None:
                        mk_stall(now)
                        mk_stall(len(st_data))
                        mk_stall(0)

                im_requests = []
                dm_requests = []
                fetch_pcs = set()
                for pid in running:
                    if stuck and pid in stuck:
                        # Clock-stuck: the core holds its state, issues
                        # nothing, and stalls (never a lockstep member).
                        core_stats[pid].stall_cycles += 1
                        fetch_pcs.add(None)
                        continue
                    core = cores[pid]
                    attempt = attempts[pid]
                    if attempt.instr is None:
                        self._new_attempt(core, attempt, mmus[pid], decoded,
                                          program_len)
                    if attempt.need_if:
                        bank, offset = im_layout.locate(pid, attempt.fetch_pc)
                        im_requests.append(Request(pid, bank, offset))
                        fetch_pcs.add(attempt.fetch_pc)
                    else:
                        fetch_pcs.add(None)  # mid-instruction: no lockstep
                    if attempt.need_dr:
                        bank, offset = attempt.dr_loc
                        dm_requests.append(Request(pid, bank, offset))
                    if attempt.need_dw:
                        bank, offset = attempt.dw_loc
                        dm_requests.append(
                            Request(pid, bank, offset, write=True))
                if len(running) > 1 and len(fetch_pcs) == 1 \
                        and None not in fetch_pcs:
                    sync_cycles += 1

                granted_im = ixbar.arbitrate(im_requests) if im_requests \
                    else set()
                granted_dm = dxbar.arbitrate(dm_requests) if dm_requests \
                    else set()

                halted_now = []
                for pid in running:
                    if stuck and pid in stuck:
                        continue
                    attempt = attempts[pid]
                    if attempt.need_if and (pid, False) in granted_im:
                        attempt.need_if = False
                    if attempt.need_dr and (pid, False) in granted_dm:
                        attempt.need_dr = False
                    if attempt.need_dw and (pid, True) in granted_dm:
                        attempt.need_dw = False
                    if attempt.need_if or attempt.need_dr or attempt.need_dw:
                        core_stats[pid].stall_cycles += 1
                        if p_stall:
                            if ap_stall is not None:
                                ap_stall(attempt.fetch_pc)
                            else:
                                bus.emit("core.stall", cycle - 1, pid,
                                         attempt.fetch_pc)
                        continue
                    if p_retire:
                        if ap_retire is not None:
                            ap_retire(attempt.fetch_pc)
                        else:
                            bus.emit("core.retire", cycle - 1, pid,
                                     attempt.fetch_pc)
                    self._commit(cores[pid], attempt, dm_banks)
                    last_progress = cycle
                    if cores[pid].halted:
                        core_stats[pid].halted_at = cycle
                        halted_now.append(pid)
                for pid in halted_now:
                    running.discard(pid)
                if watchdog and cycle - last_progress >= watchdog:
                    raise HangError(
                        f"sync watchdog: no core retired for {watchdog} "
                        f"cycles (cycle {cycle}) on {self.config.name}")
                if p_win and not cycle % win:
                    bus.flush()
                    bus.emit("telemetry.window", cycle, False, sync_cycles,
                             tuple(core.retired for core in cores),
                             tuple(cs.stall_cycles for cs in core_stats))
        finally:
            if observing:
                ixbar.probe_conflict = ixbar.probe_broadcast = None
                dxbar.probe_conflict = dxbar.probe_broadcast = None
                if hooked_mmus:
                    for mmu in mmus:
                        mmu.probe = None
                        mmu.probe_ring = None
                bus.flush()

        if p_win:
            # Final (possibly partial) window; doubles as the run
            # separator for streaming consumers.  The finally block
            # above already flushed, so every ring event precedes it.
            bus.emit("telemetry.window", cycle, True, sync_cycles,
                     tuple(core.retired for core in cores),
                     tuple(cs.stall_cycles for cs in core_stats))
        return SimulationResult(
            benchmark=self.benchmark,
            stats=self._collect_stats(cycle, sync_cycles, core_stats),
            system=self,
        )

    def _new_attempt(self, core: Core, attempt: _Attempt, mmu: MMU,
                     decoded, program_len: int) -> None:
        pc = core.pc
        if pc >= program_len:
            raise SimulationError(
                f"core {core.pid} ran off the program at PC {pc:#x}")
        instr = decoded[pc]
        dread, dwrite = core.data_requests(instr)
        attempt.instr = instr
        attempt.fetch_pc = pc
        attempt.need_if = True
        attempt.need_dr = dread is not None
        attempt.need_dw = dwrite is not None
        attempt.dr_loc = mmu.translate(dread.addr) if dread else None
        attempt.dw_loc = mmu.translate(dwrite.addr) if dwrite else None

    def _commit(self, core: Core, attempt: _Attempt, dm_banks) -> None:
        value = None
        if attempt.dr_loc is not None:
            bank, offset = attempt.dr_loc
            value = dm_banks[bank].storage[offset]
            self._dreads_committed += 1
        store = core.execute(attempt.instr, value)
        if store is not None:
            bank, offset = attempt.dw_loc
            dm_banks[bank].storage[offset] = store[1] & 0xFFFF
            self._dwrites_committed += 1
        attempt.instr = None
        attempt.dr_loc = None
        attempt.dw_loc = None

    def _collect_stats(self, cycles: int, sync_cycles: int,
                       core_stats: list[CoreStats]) -> SimulationStats:
        for pid, stats in enumerate(core_stats):
            stats.retired = self.cores[pid].retired
        ix, dx = self.ixbar.stats, self.dxbar.stats
        stats = SimulationStats(
            arch=self.config.name,
            total_cycles=cycles,
            cores=core_stats,
            im_bank_accesses=ix.bank_accesses,
            im_fetches=ix.deliveries,
            im_broadcasts=ix.broadcasts,
            im_broadcast_savings=ix.broadcast_savings,
            im_conflict_events=ix.conflict_events,
            im_stalled_requests=ix.stalls,
            im_bank_transitions=ix.total_bank_transitions,
            im_banks_used=self.im_layout.banks_used(
                len(self.decoded), self.config.n_cores),
            im_banks_gated=len(self.imem.gated_banks),
            dm_bank_accesses=dx.bank_accesses,
            dm_broadcasts=dx.broadcasts,
            dm_broadcast_savings=dx.broadcast_savings,
            dm_conflict_events=dx.conflict_events,
            dm_stalled_requests=dx.stalls,
            dm_private_accesses=sum(m.private_accesses for m in self.mmus),
            dm_shared_accesses=sum(m.shared_accesses for m in self.mmus),
            sync_cycles=sync_cycles,
        )
        stats.dm_reads_delivered = self._dreads_committed
        stats.dm_writes_delivered = self._dwrites_committed
        return stats


def build_platform(name_or_config, fast_forward: bool | None = None,
                   translation_blocks: bool | None = None,
                   **overrides) -> MultiCoreSystem:
    """Construct a platform by name ("mc-ref", "ulpmc-int", "ulpmc-bank")
    or from an explicit :class:`ArchConfig`."""
    if isinstance(name_or_config, ArchConfig):
        if overrides:
            raise ConfigurationError(
                "pass overrides with a name, not a config object")
        return MultiCoreSystem(name_or_config, fast_forward=fast_forward,
                               translation_blocks=translation_blocks)
    return MultiCoreSystem(build_config(name_or_config, **overrides),
                           fast_forward=fast_forward,
                           translation_blocks=translation_blocks)


#: Alias matching the name used in project documentation.
MulticoreSimulator = MultiCoreSystem
