"""Deterministic fault model for the multi-core platform.

A *fault plan* is drawn from a campaign seed with the same sha256
discipline the simulation farm uses for shard seeds: trial ``i`` of
campaign seed ``s`` perturbs the machine identically on every engine
(exact / fast-forward / translation-block), worker count and resume
path, which is what lets ``repro regress`` cross-check campaign digests
across execution shapes.

Fault kinds (weights in :func:`draw_fault`):

``reg``
    1-2 bit flips in one architectural register of one core.
``pc``
    1-2 bit flips in one core's program counter.
``dm``
    1-2 bit flips in one physical data-memory word (bank, offset).
``im``
    1-2 bit flips in one 24-bit instruction word.  The patched word is
    re-decoded; an undecodable word becomes a :class:`TrapInstruction`
    whose first use raises :class:`~repro.errors.TrapError` (the
    hardware analogue is an illegal-instruction trap -> *detected*).
``stuck``
    One core's clock sticks: it holds state, issues no requests and
    stalls forever.  Surviving cores run on; if the stuck core is the
    last one running the sync watchdog trips (*hang*).
``dead``
    One core drops off the platform entirely at the fault cycle
    (graceful-degradation trials remap its ECG leads to survivors).

Injection happens between cycles, at instruction boundaries for the
fast-forward engine (the run loop passes the next fault cycle as a
barrier), so both execution modes mutate identical architectural state
and the bit-identity contract survives injection.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ReproError, TrapError
from repro.tamarisc.cpu import PC_MASK
from repro.tamarisc.encoding import decode
from repro.tamarisc.isa import NUM_REGS, WORD_BITS, WORD_MASK

#: Bit widths of the flip targets.
PC_BITS = PC_MASK.bit_length()
IM_BITS = 24
IM_MASK = (1 << IM_BITS) - 1

#: Fault kinds in drawing order (cumulative percent weights).
KIND_WEIGHTS = (("reg", 30), ("pc", 40), ("dm", 65), ("im", 90),
                ("stuck", 95), ("dead", 100))
KINDS = tuple(kind for kind, _ in KIND_WEIGHTS)


def trial_seed(campaign_seed: int, trial: int) -> int:
    """Per-trial seed: sha256 of ``repro-faults:{seed}:{trial}``.

    Same discipline as :func:`repro.farm.jobs.shard_seed`, different
    domain tag so campaigns never collide with farm shards.
    """
    digest = hashlib.sha256(
        f"repro-faults:{campaign_seed}:{trial}".encode()).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``index`` is the register number (``reg``), physical bank offset
    (``dm``) or PC (``im``); ``bank`` the physical DM bank (``dm``
    only); ``mask`` the XOR flip mask (flip kinds only).
    """

    kind: str
    cycle: int
    core: int
    index: int = -1
    bank: int = -1
    mask: int = 0

    def describe(self) -> dict:
        out = {"kind": self.kind, "cycle": self.cycle, "core": self.core}
        if self.index >= 0:
            out["index"] = self.index
        if self.bank >= 0:
            out["bank"] = self.bank
        if self.mask:
            out["mask"] = self.mask
        return out


def _draw_mask(rng: random.Random, width: int) -> int:
    """1-bit (75%) or 2-bit (25%) flip mask inside ``width`` bits."""
    nbits = 2 if rng.randrange(4) == 0 else 1
    return sum(1 << b for b in rng.sample(range(width), nbits))


def draw_fault(rng: random.Random, *, n_cores: int, dm_banks: int,
               dm_bank_words: int, program_len: int,
               max_cycle: int) -> FaultSpec:
    """Draw one fault spec (only ``randrange``/``sample`` touch ``rng``,
    keeping the stream identical across Python versions)."""
    r = rng.randrange(100)
    kind = next(k for k, ceil in KIND_WEIGHTS if r < ceil)
    cycle = 1 + rng.randrange(max(1, max_cycle - 1))
    core = rng.randrange(n_cores)
    if kind == "reg":
        return FaultSpec(kind, cycle, core, index=rng.randrange(NUM_REGS),
                         mask=_draw_mask(rng, WORD_BITS))
    if kind == "pc":
        return FaultSpec(kind, cycle, core, mask=_draw_mask(rng, PC_BITS))
    if kind == "dm":
        return FaultSpec(kind, cycle, core, bank=rng.randrange(dm_banks),
                         index=rng.randrange(dm_bank_words),
                         mask=_draw_mask(rng, WORD_BITS))
    if kind == "im":
        return FaultSpec(kind, cycle, core, index=rng.randrange(program_len),
                         mask=_draw_mask(rng, IM_BITS))
    return FaultSpec(kind, cycle, core)  # stuck / dead


@dataclass(frozen=True)
class FaultPlan:
    """The full campaign drawing: one spec tuple per trial."""

    campaign_seed: int
    trials: tuple  # tuple[tuple[FaultSpec, ...], ...]

    def __len__(self) -> int:
        return len(self.trials)


def build_plan(campaign_seed: int, n_trials: int, *, n_cores: int,
               dm_banks: int, dm_bank_words: int, program_len: int,
               max_cycle: int) -> FaultPlan:
    """Draw the deterministic campaign plan (one fault per trial)."""
    trials = []
    for trial in range(n_trials):
        rng = random.Random(trial_seed(campaign_seed, trial))
        trials.append((draw_fault(
            rng, n_cores=n_cores, dm_banks=dm_banks,
            dm_bank_words=dm_bank_words, program_len=program_len,
            max_cycle=max_cycle),))
    return FaultPlan(campaign_seed, tuple(trials))


class TrapInstruction:
    """Decode-trap sentinel planted in the decoded-instruction list.

    The run loop's first touch of an instruction is ``instr.op`` (inside
    ``Core.data_requests``), so the property raising makes detection
    free for every healthy instruction.
    """

    __slots__ = ("word", "pc")

    def __init__(self, word: int, pc: int):
        self.word = word
        self.pc = pc

    @property
    def op(self):
        raise TrapError(
            f"decode trap at PC {self.pc:#x}: undecodable word "
            f"{self.word:#08x}")


class FaultSession:
    """Applies a trial's fault specs to a live system at the due cycles.

    Passed to :meth:`MultiCoreSystem.run` as ``faults=``; the run loop
    polls :attr:`next_cycle`, calls :meth:`apply_due` at the boundary,
    honours :attr:`stuck_cores`/:attr:`dead_cores` and enforces the
    :attr:`watchdog_window` hang detector.
    """

    def __init__(self, specs, watchdog_window: int = 50_000):
        self.pending = sorted(specs, key=lambda s: (s.cycle, s.core,
                                                    s.kind))
        self.watchdog_window = int(watchdog_window)
        self.stuck_cores: set[int] = set()
        self.dead_cores: set[int] = set()
        self.applied: list[dict] = []
        self._im_words: dict[int, int] = {}

    @property
    def next_cycle(self):
        return self.pending[0].cycle if self.pending else None

    def apply_due(self, system, cycle: int) -> None:
        while self.pending and self.pending[0].cycle <= cycle:
            spec = self.pending.pop(0)
            self._apply(system, spec)
            self.applied.append(spec.describe())

    def _apply(self, system, spec: FaultSpec) -> None:
        if spec.kind == "reg":
            core = system.cores[spec.core]
            core.regs[spec.index] = \
                (core.regs[spec.index] ^ spec.mask) & WORD_MASK
        elif spec.kind == "pc":
            core = system.cores[spec.core]
            core.pc = (core.pc ^ spec.mask) & PC_MASK
        elif spec.kind == "dm":
            storage = system.dmem.banks[spec.bank].storage
            storage[spec.index] = (storage[spec.index] ^ spec.mask) \
                & WORD_MASK
        elif spec.kind == "im":
            self._apply_im(system, spec)
        elif spec.kind == "stuck":
            self.stuck_cores.add(spec.core)
            # The engine assumes every running core makes progress;
            # a stalled-forever core falls outside that contract.
            system._ff_engine = None
        elif spec.kind == "dead":
            self.dead_cores.add(spec.core)
        else:  # pragma: no cover - draw_fault only emits known kinds
            raise ReproError(f"unknown fault kind {spec.kind!r}")

    def _apply_im(self, system, spec: FaultSpec) -> None:
        """Flip bits in one instruction word and re-decode it.

        The semantic source of execution is the decoded list (the
        banked instruction memory only counts accesses), so the patch
        swaps in a *fresh copy* — the pristine decode is shared through
        the process-level program cache and must never be mutated.
        Both engines drop to the exact loop from here so the patched
        word executes identically in every mode.
        """
        pc = spec.index
        word = self._im_words.get(pc)
        if word is None:
            word = system.benchmark.program.words[pc]
        word = (word ^ spec.mask) & IM_MASK
        self._im_words[pc] = word
        try:
            instr = decode(word)
        except ReproError:
            instr = TrapInstruction(word, pc)
        patched = list(system.decoded)
        patched[pc] = instr
        system.decoded = patched
        system._ff_engine = None
