"""Fault-injection campaigns: trials, classification, degradation.

A campaign is ``n_trials`` independent simulations of the ECG
benchmark, each perturbed by one deterministically drawn fault
(:mod:`repro.resilience.faults`) and classified against the golden
(fault-free) run:

``masked``
    The compressed output digest equals the golden digest — the flip
    landed in dead state or was overwritten before use.
``sdc``
    Silent data corruption: the run completed but the compressed ECG
    stream diverges from golden.
``detected``
    The platform trapped — undecodable instruction (decode trap), a PC
    off the program image, or an illegal address at the MMU.
``hang``
    The sync watchdog tripped (no core retired within the window) or
    the cycle budget ran out.

Dead-core trials additionally measure **graceful degradation**: the
dead core's lead is remapped to a survivor, which processes both leads
sequentially; the report carries the throughput factor and the
deadline verdict from the existing
:class:`~repro.obs.telemetry.WindowedAggregator` machinery.

Campaign identity deliberately excludes the execution engine
(``fast_forward``/``translation_blocks``) and every scheduling knob, so
``repro regress`` cross-checks the campaign digest across engines,
worker counts and cold/resumed executions.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, fields
from typing import ClassVar

from repro.errors import (ConfigurationError, CycleLimitError, HangError,
                          SimulationError, TrapError)
from repro.farm.checkpoint import Checkpoint, spec_key
from repro.farm.jobs import FarmJob, FarmScheduler, JobState
from repro.obs.manifest import _digest, manifest_record, write_manifest
from repro.resilience.faults import (FaultSession, FaultSpec, draw_fault,
                                     trial_seed)

#: Outcome taxonomy, display order.
OUTCOMES = ("masked", "sdc", "detected", "hang")


@dataclass(frozen=True)
class FaultTrialSpec:
    """One trial's identity: campaign coordinates plus the engine.

    Farm-dispatchable (duck-typed ``run_in_worker``); results are pure
    functions of the spec, which is what makes checkpoints resumable
    and digests engine/worker-count invariant.
    """

    trial: int
    campaign_seed: int
    arch: str
    n_samples: int = 64
    n_measurements: int = 32
    seed: int = 2012           # ECG recording seed
    fast_forward: bool = True
    translation_blocks: bool = True
    watchdog: int = 0          # 0 -> golden_cycles // 4 (min 4096)
    max_cycles: int = 0        # 0 -> 4 * golden_cycles
    clock_hz: float = 1e6

    farm_warm: ClassVar[bool] = True

    def run_in_worker(self, job_id: int, worker_id: int = 0):
        return execute_trial(self, worker_id=worker_id)


@dataclass(frozen=True)
class FaultTrialResult:
    """Outcome of one trial (pickle/JSON friendly)."""

    trial: int
    outcome: str               # one of OUTCOMES
    fault: tuple               # FaultSpec.describe() dicts
    cycles: int                # total cycles on completion, else -1
    output_digest: str         # compressed-output digest ("" on abort)
    golden_digest: str
    degradation: dict | None   # dead-core remap report
    detail: str                # classifier detail (error message)
    worker_id: int
    wall_time_s: float

    def identity_row(self) -> tuple:
        """The digest-bearing projection: everything simulated, nothing
        about scheduling (worker, wall time) or message wording."""
        return (self.trial, self.outcome, self.fault, self.cycles,
                self.output_digest, self.golden_digest, self.degradation)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultTrialResult":
        known = {f.name for f in fields(cls)}
        data = {key: value for key, value in payload.items()
                if key in known}
        data["fault"] = tuple(data.get("fault") or ())
        return cls(**data)


# -- golden runs (per-process cache) ------------------------------------------

@dataclass
class GoldenRun:
    """Fault-free reference for one (arch, geometry, seed, engine)."""

    built: object              # BuiltBenchmark
    cycles: int
    outputs: tuple
    output_digest: str
    machine: dict              # drawing parameters for the fault model


_GOLDEN_CACHE: dict[tuple, GoldenRun] = {}


def _golden_key(spec: FaultTrialSpec) -> tuple:
    return (spec.arch, spec.n_samples, spec.n_measurements, spec.seed,
            spec.fast_forward, spec.translation_blocks)


def read_outputs(system, built) -> tuple:
    """The per-core compressed outputs, read exactly as
    :func:`repro.kernels.benchmark.verify_result` reads them."""
    memmap = built.memmap
    rows = []
    for core, golden in enumerate(built.golden):
        y = system.read_logical_block(core, memmap.y_base,
                                      memmap.n_measurements)
        bits = system.read_logical(core, memmap.out_base)
        stream = system.read_logical_block(core, memmap.out_base + 1,
                                           len(golden.bitstream))
        rows.append((tuple(y), bits, tuple(stream)))
    return tuple(rows)


def golden_run(spec: FaultTrialSpec) -> GoldenRun:
    """The cached fault-free reference run for ``spec``'s coordinates."""
    from repro.kernels import BenchmarkSpec, build_benchmark
    from repro.platform import build_platform

    key = _golden_key(spec)
    cached = _GOLDEN_CACHE.get(key)
    if cached is not None:
        return cached
    built = build_benchmark(BenchmarkSpec(
        n_samples=spec.n_samples, n_measurements=spec.n_measurements,
        huffman_private=True, seed=spec.seed))
    system = build_platform(spec.arch, fast_forward=spec.fast_forward,
                            translation_blocks=spec.translation_blocks)
    result = system.run(built.benchmark)
    outputs = read_outputs(system, built)
    golden = GoldenRun(
        built=built,
        cycles=result.stats.total_cycles,
        outputs=outputs,
        output_digest=_digest(outputs),
        machine={
            "n_cores": system.config.n_cores,
            "dm_banks": system.config.dm_banks,
            "dm_bank_words": system.config.dm_bank_words,
            "program_len": len(built.benchmark.program),
        },
    )
    _GOLDEN_CACHE[key] = golden
    return golden


def golden_cache_clear() -> None:
    _GOLDEN_CACHE.clear()


# -- trial execution ----------------------------------------------------------

def _trial_faults(spec: FaultTrialSpec, golden: GoldenRun) \
        -> tuple[FaultSpec, ...]:
    rng = random.Random(trial_seed(spec.campaign_seed, spec.trial))
    machine = golden.machine
    return (draw_fault(
        rng, n_cores=machine["n_cores"], dm_banks=machine["dm_banks"],
        dm_bank_words=machine["dm_bank_words"],
        program_len=machine["program_len"],
        max_cycle=golden.cycles),)


def execute_trial(spec: FaultTrialSpec, worker_id: int = 0,
                  fault_specs=None) -> FaultTrialResult:
    """Run one fault trial and classify it.

    ``fault_specs`` overrides the drawn fault (targeted unit tests);
    campaign runs leave it ``None`` so the plan is a pure function of
    ``(campaign_seed, trial)``.
    """
    from repro.platform import build_platform

    started = time.perf_counter()
    golden = golden_run(spec)
    if fault_specs is None:
        fault_specs = _trial_faults(spec, golden)
    max_cycles = spec.max_cycles or 4 * golden.cycles
    watchdog = spec.watchdog or max(4096, golden.cycles // 4)
    session = FaultSession(fault_specs, watchdog_window=watchdog)
    system = build_platform(spec.arch, fast_forward=spec.fast_forward,
                            translation_blocks=spec.translation_blocks)
    cycles = -1
    output_digest = ""
    detail = ""
    try:
        result = system.run(golden.built.benchmark, max_cycles=max_cycles,
                            faults=session)
    except HangError as exc:
        outcome, detail = "hang", str(exc)
    except CycleLimitError as exc:
        outcome, detail = "hang", str(exc)
    except TrapError as exc:
        outcome, detail = "detected", str(exc)
    except SimulationError as exc:
        outcome, detail = "detected", str(exc)
    else:
        cycles = result.stats.total_cycles
        outputs = read_outputs(system, golden.built)
        output_digest = _digest(outputs)
        outcome = "masked" if output_digest == golden.output_digest \
            else "sdc"

    degradation = None
    dead = [s for s in fault_specs if s.kind == "dead"]
    if dead and outcome == "sdc":
        degradation = measure_degradation(spec, golden, dead[0].core)

    return FaultTrialResult(
        trial=spec.trial,
        outcome=outcome,
        fault=tuple(s.describe() for s in fault_specs),
        cycles=cycles,
        output_digest=output_digest,
        golden_digest=golden.output_digest,
        degradation=degradation,
        detail=detail,
        worker_id=worker_id,
        wall_time_s=time.perf_counter() - started,
    )


class _BlockCost:
    """Minimal ``stats``-shaped shim for a synthetic ``block.done``."""

    __slots__ = ("total_cycles",)

    def __init__(self, total_cycles):
        self.total_cycles = total_cycles


def measure_degradation(spec: FaultTrialSpec, golden: GoldenRun,
                        dead_core: int) -> dict:
    """Graceful degradation after losing ``dead_core``.

    Lead-remapping policy: the dead core's ECG lead is reassigned to
    the next surviving core, which processes both leads sequentially —
    pass 1 runs the normal block with the core dead from cycle 0
    (survivors compute their own leads), pass 2 re-runs with the dead
    lead's samples in the survivor's input buffer.  The block therefore
    costs ``c1 + c2`` cycles instead of the healthy ``golden.cycles``;
    the deadline verdict comes from a
    :class:`~repro.obs.telemetry.WindowedAggregator` fed the combined
    block cost against the real-time budget.
    """
    from repro.obs.telemetry import WindowedAggregator
    from repro.platform import build_platform
    from repro.platform.streaming import SAMPLE_RATE_HZ
    from repro.platform.multicore import Benchmark
    from repro.tamarisc.program import DataImage

    built = golden.built
    n_leads = len(built.golden)
    if n_leads < 2:
        raise ConfigurationError("lead remapping needs a survivor core")
    survivor = (dead_core + 1) % n_leads
    memmap = built.memmap
    budget = spec.clock_hz * (spec.n_samples / SAMPLE_RATE_HZ)

    system = build_platform(spec.arch, fast_forward=spec.fast_forward,
                            translation_blocks=spec.translation_blocks)
    aggregator = WindowedAggregator.attach(
        system.probe_bus(), window_cycles=8192,
        deadline_budget_cycles=budget)
    try:
        # Pass 1: the fleet minus the dead core, own leads.
        session = FaultSession([FaultSpec("dead", 0, dead_core)],
                               watchdog_window=0)
        c1 = system.run(built.benchmark, faults=session) \
            .stats.total_cycles

        # Pass 2: the survivor re-runs with the dead core's lead.
        src = built.benchmark.data
        data = DataImage(
            shared=dict(src.shared),
            private={core: dict(image)
                     for core, image in src.private.items()})
        data.private[survivor] = {
            addr: value for addr, value in src.private[survivor].items()
            if not (memmap.x_base <= addr
                    < memmap.x_base + spec.n_samples)}
        data.set_private_block(survivor, memmap.x_base,
                               built.golden[dead_core].samples)
        remapped = Benchmark(
            name=f"{built.benchmark.name}-remap{dead_core}to{survivor}",
            program=built.benchmark.program,
            data=data,
            meta=dict(built.benchmark.meta, remap=(dead_core, survivor)))
        session = FaultSession([FaultSpec("dead", 0, dead_core)],
                               watchdog_window=0)
        c2 = system.run(remapped, faults=session).stats.total_cycles

        # The remapped lead must come out bit-identical to the lead the
        # dead core would have produced.
        lead = built.golden[dead_core]
        y = system.read_logical_block(survivor, memmap.y_base,
                                      memmap.n_measurements)
        bits = system.read_logical(survivor, memmap.out_base)
        stream = system.read_logical_block(survivor, memmap.out_base + 1,
                                           len(lead.bitstream))
        remap_verified = (y == lead.measurements
                          and bits == lead.total_bits
                          and stream == lead.bitstream)

        # One degraded block costs both passes; the aggregator applies
        # the same deadline accounting streaming runs use.
        system.probe_bus().emit("block.done", 0, _BlockCost(c1 + c2))
        deadline_misses = aggregator.deadline_misses
    finally:
        aggregator.detach()

    degraded = c1 + c2
    return {
        "dead_core": dead_core,
        "survivor": survivor,
        "healthy_cycles": golden.cycles,
        "pass_cycles": (c1, c2),
        "degraded_cycles": degraded,
        "throughput_factor": golden.cycles / degraded if degraded else None,
        "deadline_budget_cycles": budget,
        "deadline_misses": deadline_misses,
        "deadline_miss": degraded > budget,
        "remap_verified": remap_verified,
    }


# -- campaign orchestration ---------------------------------------------------

def build_campaign(n_trials: int, arch: str, *, campaign_seed: int = 2012,
                   n_samples: int = 64, n_measurements: int = 32,
                   seed: int = 2012, fast_forward: bool = True,
                   translation_blocks: bool = True, watchdog: int = 0,
                   max_cycles: int = 0,
                   clock_hz: float = 1e6) -> list[FaultTrialSpec]:
    """The campaign plan: one :class:`FaultTrialSpec` per trial."""
    if n_trials < 1:
        raise ConfigurationError("need at least one trial")
    return [FaultTrialSpec(
        trial=trial, campaign_seed=campaign_seed, arch=arch,
        n_samples=n_samples, n_measurements=n_measurements, seed=seed,
        fast_forward=fast_forward, translation_blocks=translation_blocks,
        watchdog=watchdog, max_cycles=max_cycles, clock_hz=clock_hz)
        for trial in range(n_trials)]


def campaign_identity(specs) -> dict:
    """The config dict under which a campaign digest must reproduce.

    The engine (``fast_forward``/``translation_blocks``) is excluded
    on purpose: injection preserves bit identity, so ``repro regress``
    enforces digest equality *across* engines, exactly like worker
    count and resume state.
    """
    first = specs[0]
    return {
        "campaign_seed": first.campaign_seed,
        "trials": len(specs),
        "arch": first.arch,
        "n_samples": first.n_samples,
        "n_measurements": first.n_measurements,
        "seed": first.seed,
        "watchdog": first.watchdog,
        "max_cycles": first.max_cycles,
        "clock_hz": first.clock_hz,
    }


def campaign_digest(results) -> str:
    """Order-independent sha256 over the per-trial identity rows."""
    rows = sorted(result.identity_row() for result in results)
    return _digest([list(row) for row in rows])


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced."""

    results: list[FaultTrialResult]   # trial order
    jobs: list[FarmJob]
    specs: list[FaultTrialSpec]
    workers: int
    wall_time_s: float
    crashes: int = 0
    timeouts: int = 0
    resumed: int = 0

    def failed(self) -> list[FarmJob]:
        return [job for job in self.jobs
                if job.state is JobState.FAILED]

    @property
    def ok(self) -> bool:
        return len(self.results) == len(self.specs)

    def outcome_counts(self) -> dict:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for result in self.results:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def sdc_rate(self) -> float:
        return self.outcome_counts()["sdc"] / len(self.results) \
            if self.results else 0.0

    def digest(self) -> str:
        return campaign_digest(self.results)

    def degradations(self) -> list[dict]:
        return [result.degradation for result in self.results
                if result.degradation is not None]


def run_campaign(specs, workers: int = 2, *, max_retries: int = 1,
                 warm: bool = True, on_trial=None,
                 start_method: str | None = None,
                 job_timeout_s: float | None = None,
                 heartbeat_timeout_s: float | None = None,
                 checkpoint=None, resume: bool = False) -> CampaignResult:
    """Fan a campaign out over the farm scheduler.

    Same resilience contract as :func:`repro.farm.fleet.run_farm`:
    per-job wall-clock timeouts, heartbeat supervision, bounded retries
    with backoff, and checkpoint/resume with zero recomputation.
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError("empty campaign")
    started = time.perf_counter()
    store = Checkpoint(checkpoint) if checkpoint is not None else None
    prior = store.load() if store is not None and resume else {}
    resumed_jobs: list[FarmJob] = []
    todo: list[FaultTrialSpec] = []
    for index, spec in enumerate(specs):
        payload = prior.get(spec_key(spec))
        if payload is not None:
            resumed_jobs.append(FarmJob(
                job_id=-(index + 1), spec=spec, state=JobState.DONE,
                result=FaultTrialResult.from_dict(payload), resumed=True))
        else:
            todo.append(spec)

    done_count = [0]

    def _notify(job, total=len(specs)):
        done_count[0] += 1
        if job.state is JobState.DONE and store is not None \
                and not job.resumed:
            store.append(spec_key(job.spec), asdict(job.result))
        if on_trial is not None:
            on_trial(job, done_count[0], total)

    for job in resumed_jobs:
        _notify(job)

    jobs: list[FarmJob] = []
    crashes = timeouts = 0
    if todo:
        with FarmScheduler(workers=workers, max_retries=max_retries,
                           warm=warm, start_method=start_method,
                           job_timeout_s=job_timeout_s,
                           heartbeat_timeout_s=heartbeat_timeout_s) \
                as scheduler:
            scheduler.listeners.append(_notify)
            for spec in todo:
                scheduler.submit(spec)
            jobs = scheduler.run_until_complete()
            crashes = scheduler.crashes
            timeouts = scheduler.timeouts
    all_jobs = sorted(resumed_jobs + jobs,
                      key=lambda job: job.spec.trial)
    results = sorted((job.result for job in all_jobs
                      if job.state is JobState.DONE),
                     key=lambda result: result.trial)
    return CampaignResult(
        results=results, jobs=all_jobs, specs=specs, workers=workers,
        wall_time_s=time.perf_counter() - started, crashes=crashes,
        timeouts=timeouts, resumed=len(resumed_jobs))


def write_campaign_manifest(campaign: CampaignResult,
                            directory=None) -> None:
    """One ``fault`` manifest record per campaign (schema v2).

    The record's digest is the campaign digest; its identity excludes
    the engine and every scheduling knob, so regress compares campaigns
    across engines/workers/resume exactly like farm fleets.
    """
    identity = campaign_identity(campaign.specs)
    counts = campaign.outcome_counts()
    retried = [job for job in campaign.jobs if job.retries]
    degradations = campaign.degradations()
    write_manifest(manifest_record(
        "fault",
        f"faults-{identity['arch']}-{identity['n_samples']}x"
        f"{identity['n_measurements']}-n{identity['trials']}"
        f"-seed{identity['campaign_seed']}",
        arch=identity["arch"],
        config=identity,
        stats_digest_value=campaign.digest(),
        stats_summary=counts,
        wall_time_s=campaign.wall_time_s,
        extra={
            "outcomes": counts,
            "sdc_rate": campaign.sdc_rate(),
            "trials": [
                {"trial": result.trial, "outcome": result.outcome,
                 "fault": list(result.fault), "cycles": result.cycles}
                for result in campaign.results
            ],
            "degradation": {
                "measured": len(degradations),
                "worst_throughput_factor": min(
                    (d["throughput_factor"] for d in degradations
                     if d["throughput_factor"] is not None),
                    default=None),
                "deadline_misses": sum(d["deadline_misses"]
                                       for d in degradations),
                "remap_verified": all(d["remap_verified"]
                                      for d in degradations),
            },
            "fast_forward": campaign.specs[0].fast_forward,
            "translation_blocks": campaign.specs[0].translation_blocks,
            "workers": campaign.workers,
            "resumed": campaign.resumed,
            "worker_crashes": campaign.crashes,
            "worker_timeouts": campaign.timeouts,
            "retried_jobs": len(retried),
            "retries": {
                f"trial{job.spec.trial:03d}": job.retry_summary()
                for job in retried
            },
        },
    ), directory=directory)
