"""Resilience: deterministic fault injection and graceful degradation.

Two coupled halves: a seeded fault model perturbing the simulated
platform (:mod:`repro.resilience.faults`) and campaign orchestration
over the hang-proof farm scheduler
(:mod:`repro.resilience.campaign`).
"""

from repro.resilience.campaign import (OUTCOMES, CampaignResult,
                                       FaultTrialResult,
                                       FaultTrialSpec, build_campaign,
                                       campaign_digest, campaign_identity,
                                       execute_trial, golden_run,
                                       measure_degradation, run_campaign,
                                       write_campaign_manifest)
from repro.resilience.faults import (FaultPlan, FaultSession, FaultSpec,
                                     TrapInstruction, build_plan,
                                     draw_fault, trial_seed)

__all__ = [
    "OUTCOMES",
    "CampaignResult",
    "FaultPlan",
    "FaultSession",
    "FaultSpec",
    "FaultTrialResult",
    "FaultTrialSpec",
    "TrapInstruction",
    "build_campaign",
    "build_plan",
    "campaign_digest",
    "campaign_identity",
    "draw_fault",
    "execute_trial",
    "golden_run",
    "measure_degradation",
    "run_campaign",
    "trial_seed",
    "write_campaign_manifest",
]
