"""Farm job model and process-pool scheduler.

A *job* is one independent patient run: a :class:`FarmJobSpec` naming
the workload seed, architecture, geometry and telemetry window
settings.  Jobs carry no object graphs — specs are small frozen
dataclasses that pickle cheaply across the process boundary, and every
simulated quantity a job produces is a pure function of its spec
(:func:`shard_seed` makes the per-shard seeds a pure function of
``(base_seed, shard_index)``), so results are bit-identical no matter
how many workers run them or in which order.

The :class:`FarmScheduler` owns a pool of worker processes
(:mod:`repro.farm.worker`), each fed through its own pipe so a crash is
attributable to exactly one in-flight job.  The loop is
submit/poll/cancel:

* ``submit()`` queues a spec; at most one job is in flight per worker
  (dispatch happens only to an idle, live worker), the rest wait in the
  scheduler's own queue — in-flight work is bounded by the pool size,
  never by how fast the caller submits.
* ``poll()`` drains finished results without blocking;
  ``run_until_complete()`` loops it with liveness checks.
* A worker that dies mid-job (OOM kill, segfault, ``os._exit``) is
  detected via ``Process.is_alive()``; its job is marked failed and
  requeued up to ``max_retries`` times, and a replacement worker is
  spawned so the pool never shrinks.
* ``cancel()`` withdraws a queued job; ``fail_fast`` cancels the rest
  of the queue after the first terminal failure.
"""

from __future__ import annotations

import enum
import hashlib
import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

#: Retry cap default: one requeue after a crash, then the job fails
#: terminally (a deterministic crasher would otherwise loop forever).
DEFAULT_MAX_RETRIES = 1

#: How often workers report liveness (seconds).
DEFAULT_HEARTBEAT_INTERVAL = 0.1

#: Base of the exponential requeue backoff: attempt ``k`` waits
#: ``base * 2**(k-1)`` seconds before redispatch.
DEFAULT_BACKOFF_BASE = 0.25


def shard_seed(base_seed: int, shard_index: int) -> int:
    """Deterministic per-shard workload seed.

    A pure function of ``(base_seed, shard_index)`` — independent of
    worker count, submission order and scheduling — so every shard
    simulates the same patient recording no matter how the farm is
    sized.  Hashed rather than ``base_seed + shard_index`` so
    neighbouring shards do not draw overlapping ECG generator streams.
    """
    payload = f"repro-farm:{base_seed}:{shard_index}".encode("ascii")
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "little")


@dataclass(frozen=True)
class FarmJobSpec:
    """Everything one patient run depends on (identity-bearing).

    ``fault`` is a test hook executed inside the worker: ``"raise"``
    fails the job with an exception (reported failure), ``"exit"``
    kills the worker process outright (crash path).  Production specs
    leave it ``None``.
    """

    shard_index: int
    seed: int
    arch: str
    n_samples: int = 512
    n_measurements: int = 256
    n_blocks: int = 2
    window_cycles: int = 8192
    clock_hz: float = 1e6
    fast_forward: bool = True
    translation_blocks: bool = True
    fault: str | None = None


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class FarmJob:
    """One tracked job: spec plus scheduling state."""

    job_id: int
    spec: FarmJobSpec
    state: JobState = JobState.PENDING
    attempts: int = 0
    worker_id: int | None = None
    result: object | None = None   # JobResult when DONE
    error: str | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    finished_at: float | None = None
    #: One entry per requeue: {attempt, cause, error, backoff_s}.
    #: ``cause`` is "crash" (worker died), "timeout" (wall-clock cap),
    #: "heartbeat" (worker stopped beating) or "error" (in-worker
    #: exception) — the distinction the manifest records surface.
    retries: list = field(default_factory=list)
    not_before: float = 0.0        # backoff: earliest redispatch time
    resumed: bool = False          # satisfied from a checkpoint

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED,
                              JobState.CANCELLED)

    def retry_summary(self) -> dict:
        """Requeue accounting for manifests and progress streams."""
        return {
            "attempts": self.attempts,
            "retries": [dict(entry) for entry in self.retries],
            "causes": sorted({entry["cause"] for entry in self.retries}),
            "backoff_schedule_s": [entry["backoff_s"]
                                   for entry in self.retries],
        }


class _Worker:
    """One pool member: process + its private job pipe."""

    def __init__(self, ctx, worker_id: int, result_queue, warm: bool,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL):
        from repro.farm.worker import worker_main
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.job: FarmJob | None = None
        self.ready = False
        self.warm_info: dict | None = None
        self.job_started: float | None = None
        self.last_beat = time.monotonic()
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, result_queue, warm,
                  heartbeat_interval),
            daemon=True)
        self.process.start()
        child_conn.close()

    def send(self, spec: FarmJobSpec | None) -> None:
        self.conn.send(spec)

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop a hung worker (SIGKILL; it holds no locks we
        need — results travel through the queue, manifests are written
        by the scheduler process only)."""
        try:
            self.process.kill()
        except (OSError, AttributeError):  # pragma: no cover
            self.process.terminate()
        self.process.join(1.0)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class FarmScheduler:
    """Shard N independent runs across a bounded worker pool.

    Use as a context manager (or call :meth:`shutdown`)::

        with FarmScheduler(workers=4) as farm:
            ids = [farm.submit(spec) for spec in plan]
            jobs = farm.run_until_complete()

    ``warm=False`` makes every job start from cold caches (the workers
    clear the decode-table and block caches before each job) — the
    control arm of the warm-cache measurement in
    ``benchmarks/bench_farm.py``.
    """

    def __init__(self, workers: int = 2,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 warm: bool = True, fail_fast: bool = False,
                 start_method: str | None = None,
                 job_timeout_s: float | None = None,
                 heartbeat_timeout_s: float | None = None,
                 heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL,
                 backoff_base_s: float = DEFAULT_BACKOFF_BASE):
        if workers < 1:
            raise ConfigurationError("need at least one worker")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ConfigurationError("job_timeout_s must be positive")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat_timeout_s must be positive")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            # fork inherits the parent's warm caches for free; fall
            # back to spawn elsewhere (workers then warm themselves).
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ConfigurationError(
                f"start method {start_method!r} not available "
                f"(have {methods})")
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.n_workers = workers
        self.max_retries = max_retries
        self.warm = warm
        self.fail_fast = fail_fast
        self.job_timeout_s = job_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.backoff_base_s = backoff_base_s
        self.jobs: dict[int, FarmJob] = {}
        self.listeners: list = []      # called with each terminal FarmJob
        self.crashes = 0               # workers lost mid-job
        self.timeouts = 0              # workers killed (timeout/heartbeat)
        self._pending: list[int] = []  # job ids awaiting dispatch
        self._next_id = 0
        self._results = self._ctx.Queue()
        self._workers = [self._spawn(i) for i in range(workers)]
        self._next_worker_id = workers
        self._closed = False

    def _spawn(self, worker_id: int) -> _Worker:
        return _Worker(self._ctx, worker_id, self._results, self.warm,
                       self.heartbeat_interval_s)

    # -- submission --------------------------------------------------------

    def submit(self, spec: FarmJobSpec) -> int:
        """Queue one job; returns its job id."""
        if self._closed:
            raise ConfigurationError("scheduler is shut down")
        job = FarmJob(job_id=self._next_id, spec=spec)
        self._next_id += 1
        self.jobs[job.job_id] = job
        self._pending.append(job.job_id)
        return job.job_id

    def cancel(self, job_id: int) -> bool:
        """Withdraw a still-pending job.  Running jobs are not
        preempted (a simulation has no safe interruption point);
        returns False for them and for already-terminal jobs."""
        job = self.jobs[job_id]
        if job.state is JobState.PENDING and job_id in self._pending:
            self._pending.remove(job_id)
            self._finish(job, JobState.CANCELLED)
            return True
        return False

    # -- progress ----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return sum(1 for job in self.jobs.values() if not job.terminal)

    @property
    def in_flight(self) -> int:
        return sum(1 for worker in self._workers if worker.job is not None)

    def poll(self, timeout: float = 0.0) -> list[FarmJob]:
        """One scheduler tick: dispatch, drain results, detect crashes.

        Returns the jobs that reached a terminal state during this
        call; never blocks longer than ``timeout``.
        """
        self._dispatch()
        finished = self._drain(timeout)
        finished.extend(self._check_health())
        finished.extend(self._reap_crashes())
        if self.fail_fast and any(job.state is JobState.FAILED
                                  for job in finished):
            for job_id in list(self._pending):
                job = self.jobs[job_id]
                self._pending.remove(job_id)
                self._finish(job, JobState.CANCELLED)
                finished.append(job)
        return finished

    def run_until_complete(self, tick: float = 0.05) -> list[FarmJob]:
        """Drive :meth:`poll` until every submitted job is terminal."""
        while self.outstanding:
            self.poll(timeout=tick)
        return [self.jobs[job_id] for job_id in sorted(self.jobs)]

    def warm_reports(self) -> list[dict]:
        """Per-worker warm-up reports received so far."""
        return [worker.warm_info for worker in self._workers
                if worker.warm_info is not None]

    # -- internals ---------------------------------------------------------

    def _dispatch(self) -> None:
        now = time.monotonic()
        for worker in self._workers:
            if not self._pending:
                return
            if worker.job is not None or not worker.alive():
                continue
            # First pending job past its backoff window (submission
            # order otherwise preserved).
            job = None
            for index, job_id in enumerate(self._pending):
                candidate = self.jobs[job_id]
                if candidate.not_before <= now:
                    job = candidate
                    del self._pending[index]
                    break
            if job is None:
                return  # everything pending is still backing off
            job.state = JobState.RUNNING
            job.worker_id = worker.worker_id
            job.attempts += 1
            worker.job = job
            worker.job_started = now
            worker.last_beat = now
            try:
                worker.send((job.job_id, job.spec, job.attempts))
            except (OSError, BrokenPipeError):
                worker.job = None
                worker.job_started = None
                self._handle_crash(worker, job)

    def _drain(self, timeout: float) -> list[FarmJob]:
        finished = []
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                message = self._results.get(
                    timeout=max(0.0, remaining)) \
                    if timeout > 0 else self._results.get_nowait()
            except queue_module.Empty:
                break
            finished.extend(self._on_message(message))
            timeout = 0  # drain whatever else is ready, non-blocking
        return finished

    def _on_message(self, message) -> list[FarmJob]:
        kind, worker_id, payload = message
        worker = self._worker_by_id(worker_id)
        if kind == "ready":
            if worker is not None:
                worker.ready = True
                worker.warm_info = payload
            return []
        if kind == "beat":
            if worker is not None:
                worker.last_beat = time.monotonic()
            return []
        job_id, body = payload
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return []
        if worker is not None and worker.job is job:
            worker.job = None
            worker.job_started = None
        if kind == "done":
            job.result = body
            self._finish(job, JobState.DONE)
        else:  # "failed": in-worker exception — retry like a crash
            job.error = body
            if not self._requeue(job, "error"):
                self._finish(job, JobState.FAILED)
        return [job] if job.terminal else []

    def _worker_by_id(self, worker_id: int) -> _Worker | None:
        for worker in self._workers:
            if worker.worker_id == worker_id:
                return worker
        return None

    def _check_health(self) -> list[FarmJob]:
        """Kill workers whose job overran its wall-clock cap or whose
        heartbeat went silent; the job requeues with the cause
        attributed ("timeout" vs "heartbeat" vs plain "crash")."""
        if self.job_timeout_s is None and self.heartbeat_timeout_s is None:
            return []
        finished = []
        now = time.monotonic()
        for index, worker in enumerate(self._workers):
            job = worker.job
            if job is None or not worker.alive():
                continue
            cause = None
            if self.job_timeout_s is not None \
                    and worker.job_started is not None \
                    and now - worker.job_started >= self.job_timeout_s:
                cause = "timeout"
                detail = (f"job {job.job_id} exceeded its "
                          f"{self.job_timeout_s:g}s wall-clock budget on "
                          f"worker {worker.worker_id}")
            elif self.heartbeat_timeout_s is not None \
                    and now - worker.last_beat >= self.heartbeat_timeout_s:
                cause = "heartbeat"
                detail = (f"worker {worker.worker_id} sent no heartbeat "
                          f"for {self.heartbeat_timeout_s:g}s while "
                          f"running job {job.job_id}")
            if cause is None:
                continue
            self.timeouts += 1
            worker.job = None
            worker.job_started = None
            worker.kill()
            worker.close()
            self._workers[index] = self._spawn(self._next_worker_id)
            self._next_worker_id += 1
            job.error = detail
            if not self._requeue(job, cause):
                self._finish(job, JobState.FAILED)
                finished.append(job)
        return finished

    def _reap_crashes(self) -> list[FarmJob]:
        finished = []
        for index, worker in enumerate(self._workers):
            if worker.alive():
                continue
            job, worker.job = worker.job, None
            worker.close()
            self._workers[index] = self._spawn(self._next_worker_id)
            self._next_worker_id += 1
            if job is not None and not job.terminal:
                self.crashes += 1
                finished.extend(self._handle_crash(None, job))
        return finished

    def _handle_crash(self, worker, job: FarmJob) -> list[FarmJob]:
        job.error = job.error or \
            f"worker {job.worker_id} died while running job {job.job_id}"
        if self._requeue(job, "crash"):
            return []
        self._finish(job, JobState.FAILED)
        return [job]

    def _requeue(self, job: FarmJob, cause: str) -> bool:
        backoff = self.backoff_base_s * (2 ** (job.attempts - 1))
        job.retries.append({
            "attempt": job.attempts,
            "cause": cause,
            "error": job.error,
            "backoff_s": backoff,
        })
        if job.attempts > self.max_retries:
            return False
        job.state = JobState.PENDING
        job.worker_id = None
        job.not_before = time.monotonic() + backoff
        self._pending.append(job.job_id)
        return True

    def _finish(self, job: FarmJob, state: JobState) -> None:
        job.state = state
        job.finished_at = time.monotonic()
        for listener in self.listeners:
            listener(job)

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.send(None)
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            worker.close()
        self._results.close()
        self._results.join_thread()

    def __enter__(self) -> "FarmScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def respec(spec: FarmJobSpec, **overrides) -> FarmJobSpec:
    """A copy of ``spec`` with fields replaced (thin dataclass helper)."""
    return replace(spec, **overrides)
