"""Fleet aggregation: plans, merged telemetry and manifest records.

One farm invocation evaluates a *fleet*: N patients (shards), each an
independent :class:`~repro.farm.jobs.FarmJobSpec`.  This module builds
the plans, runs them through a :class:`~repro.farm.jobs.FarmScheduler`,
and reduces the per-run results to fleet-level numbers:

* the per-run window streams merge via
  :func:`repro.obs.telemetry.merge_window_lists` into one fleet window
  stream (per-window counters summed, core columns concatenated);
* per-block cycle counts pool into fleet p50/p99 cycle budgets and a
  deadline-miss rate — the capacity-planning numbers a monitoring
  service actually needs;
* the per-run digests fold, order-independently, into one fleet digest.

Manifest output (``repro-manifest/2``): one ``farm`` record per run and
one ``fleet`` record per invocation, both carrying ``stats_digest``
values that are pure functions of the plan — ``repro regress`` compares
farm output across revisions, worker counts and submission orders
exactly like any other run kind.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError
from repro.farm.checkpoint import Checkpoint, spec_key
from repro.farm.jobs import FarmJob, FarmJobSpec, FarmScheduler, JobState, \
    shard_seed
from repro.farm.worker import JobResult
from repro.obs.manifest import manifest_record, stats_digest, write_manifest
from repro.obs.telemetry import TELEMETRY_SCHEMA, merge_window_lists, \
    percentile, summaries_digest

#: Default fleet base seed (the single-run default seed, so a one-shard
#: farm reproduces familiar numbers).
DEFAULT_BASE_SEED = 2012


def build_plan(runs: int, arches, *, base_seed: int = DEFAULT_BASE_SEED,
               n_samples: int = 512, n_measurements: int = 256,
               n_blocks: int = 2, window_cycles: int = 8192,
               clock_hz: float = 1e6, fast_forward: bool = True,
               translation_blocks: bool = True) -> list[FarmJobSpec]:
    """N shard specs: shard *i* gets ``arches[i % len(arches)]`` and the
    deterministic seed :func:`~repro.farm.jobs.shard_seed`\\ ``(base_seed,
    i)`` — the plan is a pure function of its arguments."""
    if runs < 1:
        raise ConfigurationError("need at least one run")
    arches = list(arches)
    if not arches:
        raise ConfigurationError("need at least one architecture")
    return [
        FarmJobSpec(
            shard_index=index,
            seed=shard_seed(base_seed, index),
            arch=arches[index % len(arches)],
            n_samples=n_samples,
            n_measurements=n_measurements,
            n_blocks=n_blocks,
            window_cycles=window_cycles,
            clock_hz=clock_hz,
            fast_forward=fast_forward,
            translation_blocks=translation_blocks,
        )
        for index in range(runs)
    ]


def plan_identity(plan, base_seed: int) -> dict:
    """The config dict under which a fleet's digest must reproduce.

    Execution details — worker count, warm mode, retries, submission
    order — are deliberately absent: they must not change a single
    simulated bit, and keeping them out of the identity is what lets
    ``repro regress`` compare a ``--workers 4`` run against a
    ``--workers 1`` rerun.
    """
    first = plan[0]
    return {
        "runs": len(plan),
        "base_seed": base_seed,
        "arches": sorted({spec.arch for spec in plan}),
        "n_samples": first.n_samples,
        "n_measurements": first.n_measurements,
        "n_blocks": first.n_blocks,
        "window_cycles": first.window_cycles,
        "clock_hz": first.clock_hz,
        "fast_forward": first.fast_forward,
        "translation_blocks": first.translation_blocks,
    }


def fleet_digest(results) -> str:
    """Order-independent sha256 over the per-run digests.

    Folding ``(shard_index, arch, seed, stats_digest,
    telemetry_digest)`` tuples in shard order makes the digest invariant
    under completion order and worker count but sensitive to any change
    in any run's simulated output.
    """
    rows = sorted(
        (r.shard_index, r.arch, r.seed, r.stats_digest, r.telemetry_digest)
        for r in results)
    return stats_digest([list(row) for row in rows])


@dataclass
class FleetResult:
    """Everything one farm invocation produced."""

    jobs: list[FarmJob]
    plan: list[FarmJobSpec]
    base_seed: int
    workers: int
    warm: bool
    wall_time_s: float
    warm_reports: list[dict] = field(default_factory=list)
    crashes: int = 0
    timeouts: int = 0              # workers killed (timeout/heartbeat)
    resumed: int = 0               # shards satisfied from the checkpoint

    # -- views -------------------------------------------------------------

    def completed(self):
        """Per-run results, shard order (completion order erased)."""
        results = [job.result for job in self.jobs
                   if job.state is JobState.DONE]
        return sorted(results, key=lambda r: r.shard_index)

    def failed(self) -> list[FarmJob]:
        return [job for job in self.jobs if job.state is JobState.FAILED]

    def cancelled(self) -> list[FarmJob]:
        return [job for job in self.jobs
                if job.state is JobState.CANCELLED]

    @property
    def ok(self) -> bool:
        return not self.failed() and not self.cancelled()

    def merged_windows(self):
        """The fleet window stream (see
        :func:`repro.obs.telemetry.merge_window_lists`)."""
        return merge_window_lists(
            *[result.windows for result in self.completed()])

    def digest(self) -> str:
        return fleet_digest(self.completed())

    # -- reductions --------------------------------------------------------

    def fleet_summary(self) -> dict:
        """Capacity-planning rollup across every completed run."""
        results = self.completed()
        block_cycles = [cycles for result in results
                        for cycles in result.block_cycles]
        blocks_done = sum(result.blocks_done for result in results)
        misses = sum(result.deadline_misses for result in results)
        cpu_s = sum(result.wall_time_s for result in results)
        cache: dict[str, int] = {}
        for result in results:
            for key, value in result.cache_stats.items():
                cache[key] = cache.get(key, 0) + value
        hits = cache.get("block_hits", 0) + cache.get("program_hits", 0)
        misses_cache = cache.get("block_misses", 0) \
            + cache.get("program_misses", 0)
        retried = [job for job in self.jobs if job.retries]
        summary = {
            "runs": len(self.jobs),
            "completed": len(results),
            "failed": len(self.failed()),
            "cancelled": len(self.cancelled()),
            "worker_crashes": self.crashes,
            "worker_timeouts": self.timeouts,
            "resumed_from_checkpoint": self.resumed,
            "retried_jobs": len(retried),
            "retries": {
                f"shard{job.spec.shard_index:03d}": job.retry_summary()
                for job in retried
            },
            "workers": self.workers,
            "warm": self.warm,
            "wall_time_s": self.wall_time_s,
            "runs_per_s": len(results) / self.wall_time_s
            if self.wall_time_s > 0 else None,
            "job_cpu_s": cpu_s,
            "parallel_efficiency": cpu_s / (self.wall_time_s * self.workers)
            if self.wall_time_s > 0 else None,
            "blocks_done": blocks_done,
            "deadline_misses": misses,
            "deadline_miss_rate": misses / blocks_done if blocks_done
            else None,
            "cycles_per_block": {
                "p50": percentile(block_cycles, 0.50),
                "p99": percentile(block_cycles, 0.99),
                "worst": max(block_cycles) if block_cycles else None,
                "mean": sum(block_cycles) / len(block_cycles)
                if block_cycles else None,
            },
            "shared_cache": {
                "lookups": hits + misses_cache,
                "hits": hits,
                "misses": misses_cache,
                "source_compiles": cache.get("source_compiles", 0),
                "hit_rate": hits / (hits + misses_cache)
                if hits + misses_cache else None,
            },
        }
        per_arch: dict[str, dict] = {}
        for result in results:
            row = per_arch.setdefault(result.arch, {
                "runs": 0, "blocks_done": 0, "deadline_misses": 0,
                "block_cycles": []})
            row["runs"] += 1
            row["blocks_done"] += result.blocks_done
            row["deadline_misses"] += result.deadline_misses
            row["block_cycles"].extend(result.block_cycles)
        summary["per_arch"] = {
            arch: {
                "runs": row["runs"],
                "blocks_done": row["blocks_done"],
                "deadline_misses": row["deadline_misses"],
                "p50_block_cycles": percentile(row["block_cycles"], 0.50),
                "p99_block_cycles": percentile(row["block_cycles"], 0.99),
            } for arch, row in sorted(per_arch.items())
        }
        return summary

    def telemetry_block(self) -> dict:
        """A fleet-level ``telemetry`` manifest block over the merged
        window stream."""
        merged = self.merged_windows()
        return {
            "schema": TELEMETRY_SCHEMA,
            "window_cycles": self.plan[0].window_cycles if self.plan
            else None,
            "windows": len(merged),
            "digest": summaries_digest(merged),
            "shards": len(self.completed()),
        }


def run_farm(plan, workers: int = 2, *,
             base_seed: int = DEFAULT_BASE_SEED,
             max_retries: int = 1, warm: bool = True,
             fail_fast: bool = False, on_job=None,
             start_method: str | None = None,
             job_timeout_s: float | None = None,
             heartbeat_timeout_s: float | None = None,
             checkpoint=None, resume: bool = False) -> FleetResult:
    """Execute ``plan`` on a worker pool and aggregate the fleet.

    ``on_job`` fires with ``(job, done, total)`` as each job reaches a
    terminal state (progress reporting).  The returned
    :class:`FleetResult` is independent of ``workers`` in every
    simulated bit — only the wall-clock fields differ.

    ``checkpoint`` (a path) appends every completed shard to an atomic
    checkpoint JSONL; with ``resume=True`` shards already recorded
    there are satisfied without simulation (``resumed`` jobs) and only
    the remainder is submitted — results are pure functions of their
    specs, so the fleet digest is bit-identical either way.
    """
    plan = list(plan)
    if not plan:
        raise ConfigurationError("empty farm plan")
    started = time.perf_counter()
    store = Checkpoint(checkpoint) if checkpoint is not None else None
    prior = store.load() if store is not None and resume else {}
    resumed_jobs: list[FarmJob] = []
    todo: list[FarmJobSpec] = []
    for index, spec in enumerate(plan):
        payload = prior.get(spec_key(spec))
        if payload is not None:
            resumed_jobs.append(FarmJob(
                job_id=-(index + 1), spec=spec, state=JobState.DONE,
                result=JobResult.from_dict(payload), resumed=True))
        else:
            todo.append(spec)

    done_count = [0]

    def _notify(job, total=len(plan)):
        done_count[0] += 1
        if job.state is JobState.DONE and store is not None \
                and not job.resumed:
            store.append(spec_key(job.spec), asdict(job.result))
        if on_job is not None:
            on_job(job, done_count[0], total)

    for job in resumed_jobs:
        _notify(job)

    jobs: list[FarmJob] = []
    warm_reports: list[dict] = []
    crashes = timeouts = 0
    if todo:  # a fully-resumed fleet never spawns a worker
        with FarmScheduler(workers=workers, max_retries=max_retries,
                           warm=warm, fail_fast=fail_fast,
                           start_method=start_method,
                           job_timeout_s=job_timeout_s,
                           heartbeat_timeout_s=heartbeat_timeout_s) \
                as scheduler:
            scheduler.listeners.append(_notify)
            for spec in todo:
                scheduler.submit(spec)
            jobs = scheduler.run_until_complete()
            warm_reports = scheduler.warm_reports()
            crashes = scheduler.crashes
            timeouts = scheduler.timeouts
    all_jobs = sorted(resumed_jobs + jobs,
                      key=lambda job: job.spec.shard_index)
    return FleetResult(
        jobs=all_jobs, plan=plan, base_seed=base_seed, workers=workers,
        warm=warm, wall_time_s=time.perf_counter() - started,
        warm_reports=warm_reports, crashes=crashes, timeouts=timeouts,
        resumed=len(resumed_jobs))


def write_fleet_manifests(fleet: FleetResult, directory=None) -> None:
    """Append one ``farm`` record per completed run plus one ``fleet``
    record (schema ``repro-manifest/2``), all regress-comparable."""
    identity = plan_identity(fleet.plan, fleet.base_seed)
    geometry = f"{identity['n_samples']}x{identity['n_measurements']}" \
               f"x{identity['n_blocks']}-w{identity['window_cycles']}"
    benchmark = None
    by_shard = {job.spec.shard_index: job for job in fleet.jobs}
    for result in fleet.completed():
        benchmark = result.benchmark
        job = by_shard.get(result.shard_index)
        write_manifest(manifest_record(
            "farm",
            f"{result.benchmark}-{geometry}-shard{result.shard_index:03d}"
            f"-seed{result.seed:08x}",
            arch=result.arch,
            config=result.config,
            stats_digest_value=result.stats_digest,
            stats_summary=result.stats_summary,
            wall_time_s=result.wall_time_s,
            telemetry={
                "schema": TELEMETRY_SCHEMA,
                "window_cycles": identity["window_cycles"],
                "windows": len(result.windows),
                "digest": result.telemetry_digest,
            },
            extra={
                "shard_index": result.shard_index,
                "seed": result.seed,
                "worker_id": result.worker_id,
                "blocks_done": result.blocks_done,
                "deadline_misses": result.deadline_misses,
                "deadline_budget_cycles": result.deadline_budget_cycles,
                "blocks_compiled": result.blocks_compiled,
                "block_entries": result.block_entries,
                "cache_stats": result.cache_stats,
                "cache_hit_rate": result.cache_hit_rate,
                "fast_forward": identity["fast_forward"],
                "translation_blocks": identity["translation_blocks"],
                "attempts": job.attempts if job is not None else None,
                "resumed": job.resumed if job is not None else False,
                "retries": job.retry_summary()["retries"]
                if job is not None and job.retries else [],
            },
        ), directory=directory)
    write_manifest(manifest_record(
        "fleet",
        f"{benchmark or 'cs-huffman-privlut'}-{geometry}"
        f"-n{identity['runs']}-seed{fleet.base_seed}",
        arch=None,
        config=identity,
        stats_digest_value=fleet.digest(),
        stats_summary=None,
        wall_time_s=fleet.wall_time_s,
        telemetry=fleet.telemetry_block(),
        extra={
            "fleet": fleet.fleet_summary(),
            "warm_reports": fleet.warm_reports,
            "failed_shards": [job.spec.shard_index
                              for job in fleet.failed()],
        },
    ), directory=directory)
