"""Simulation farm: parallel multi-patient fleet runs.

The platform simulates one wearable node; the monitoring *service* the
paper motivates runs against whole patient populations.  This package
makes fleet-scale evaluation a first-class operation: it shards N
independent patient runs — each a ``(workload seed, architecture,
window settings)`` point — across a pool of worker processes, keeps the
per-process decode-table and block-translation caches warm across jobs,
and merges the per-run telemetry window streams into one fleet view
with p50/p99 cycle budgets and deadline-miss rates.

Layers, bottom up:

* :mod:`repro.farm.jobs` — the job model (:class:`FarmJobSpec`,
  deterministic per-shard seeds) and the :class:`FarmScheduler`
  (submit/poll/cancel, bounded in-flight jobs, crash detection with
  bounded requeue).
* :mod:`repro.farm.worker` — the worker runtime: warms the caches once
  per process, then executes jobs back to back, shipping a compact
  :class:`JobResult` (digests, window dicts, cache counters) home.
* :mod:`repro.farm.fleet` — fleet aggregation: plan builders, the
  :class:`FleetResult` merge (via
  :func:`repro.obs.telemetry.merge_window_lists`), and the per-run +
  fleet manifest records the ``repro regress`` gate consumes.

Determinism contract (test- and bench-enforced): every per-run
``stats_digest`` is a pure function of its :class:`FarmJobSpec` —
bit-identical across worker counts, submission order and scheduling
interleavings — and the fleet digest is an order-independent fold of
the per-run digests.
"""

from repro.farm.jobs import (
    FarmJob,
    FarmJobSpec,
    FarmScheduler,
    JobState,
    shard_seed,
)
from repro.farm.worker import JobResult, execute_job, warm_worker
from repro.farm.fleet import (
    FleetResult,
    build_plan,
    fleet_digest,
    run_farm,
)

__all__ = [
    "FarmJob",
    "FarmJobSpec",
    "FarmScheduler",
    "FleetResult",
    "JobResult",
    "JobState",
    "build_plan",
    "execute_job",
    "fleet_digest",
    "run_farm",
    "shard_seed",
    "warm_worker",
]
