"""Atomic checkpoint JSONL for resumable farm/campaign invocations.

Every completed job appends one record keyed by the sha256 of its
canonicalised spec, so an interrupted invocation (SIGKILL, OOM, power
loss) resumes with zero recomputation: on ``--resume`` the runner loads
the checkpoint, synthesises completed jobs for every spec already
recorded, and only submits the remainder.  Because results are pure
functions of their specs, a resumed fleet digest is bit-identical to a
cold one.

Appends use the same single-``os.write`` O_APPEND discipline as the
manifest writer, so concurrent appenders interleave whole lines and a
killed writer can corrupt at most the final line.  The loader tolerates
exactly that: a truncated/corrupt trailing line is skipped with a
counted warning, never an exception.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.obs.manifest import _canonical, _digest

CHECKPOINT_SCHEMA = "repro-checkpoint/1"


def spec_key(spec) -> str:
    """Stable identity of one job spec (canonical-JSON sha256)."""
    return _digest(spec)


def checkpoint_path(runs_dir, kind: str, identity) -> Path:
    """Default checkpoint location for an invocation.

    ``identity`` is the invocation's identity dict (plan or campaign);
    the digest in the filename keeps different plans from sharing a
    checkpoint while reruns of the same plan find theirs again.
    """
    return Path(runs_dir) / "checkpoints" / \
        f"{kind}-{_digest(identity)[:12]}.jsonl"


class Checkpoint:
    """One append-only checkpoint file."""

    def __init__(self, path):
        self.path = Path(path)
        self.skipped = 0  # corrupt/truncated lines ignored by load()

    def load(self) -> dict:
        """``spec_key -> payload`` for every intact record.

        Later records win (a job checkpointed twice — e.g. by a retry
        racing a kill — resolves to its final result).  Corrupt lines
        (truncated tail from a killed writer) are skipped with a
        counted warning on stderr.
        """
        results: dict[str, dict] = {}
        self.skipped = 0
        if not self.path.exists():
            return results
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["spec_key"]
                payload = record["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self.skipped += 1
                continue
            results[key] = payload
        if self.skipped:
            print(f"warning: skipped {self.skipped} corrupt checkpoint "
                  f"line(s) in {self.path} (interrupted writer)",
                  file=sys.stderr)
        return results

    def append(self, key: str, payload) -> None:
        """Durably append one completed-job record (atomic line)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({
            "schema": CHECKPOINT_SCHEMA,
            "spec_key": key,
            "payload": _canonical(payload),
        }, sort_keys=True) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
