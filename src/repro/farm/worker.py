"""Farm worker runtime: warm once, then simulate jobs back to back.

A worker process amortises everything a single-run CLI invocation pays
per run:

* **Decode table** — :func:`repro.platform.program_artifacts` caches
  the decoded instruction list and compiled dispatch table per program
  image, so every job after the first reuses them.
* **Block translations** — the module-level caches in
  :mod:`repro.tamarisc.blocks` (``(pc, image_hash) -> Block`` plus the
  source-text -> code-object cache) survive across jobs; different
  patient seeds share one program image, so after the warm-up run no
  job compiles a single block.

The payoff is *measured*, not assumed: every :class:`JobResult` carries
the engine's ``block_entries``/``blocks_compiled`` counters for its own
run, and the warm-up report counts what the warm run itself had to
compile.  A warm worker executes jobs with ``blocks_compiled == 0``
(pure cache hits); ``warm=False`` clears all caches before every job,
giving the cold control arm ``benchmarks/bench_farm.py`` compares
against.

Workers never touch ``runs/`` — they ship a compact, pickle-friendly
:class:`JobResult` (digests, window dicts, counters) to the scheduler,
which is the single manifest writer.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, fields

from repro.obs.manifest import _canonical, stats_digest


@dataclass(frozen=True)
class JobResult:
    """Everything the fleet needs from one finished patient run.

    ``stats_digest`` covers the per-block ``SimulationStats`` sequence
    (the full architectural outcome); ``telemetry_digest`` covers the
    window stream.  Both are pure functions of the job spec —
    bit-identical across worker counts and scheduling orders.
    """

    job_id: int
    shard_index: int
    worker_id: int
    seed: int
    arch: str
    benchmark: str
    stats_digest: str
    telemetry_digest: str
    windows: tuple            # of WindowSummary.to_dict() dicts
    stats_summary: dict       # summed power-relevant counters
    config: dict              # canonical ArchConfig dump
    blocks_done: int
    block_cycles: tuple       # per-block total_cycles, block order
    deadline_misses: int
    deadline_budget_cycles: float
    block_cache: dict | None  # engine block_summary() of the last block
    blocks_compiled: int      # per-engine installs summed over blocks
    block_entries: int        # block-cache entries across the whole job
    cache_stats: dict         # process-cache hit/miss deltas for this job
    wall_time_s: float

    @property
    def cache_hit_rate(self) -> float | None:
        """Warm-vs-cold evidence: fraction of this job's shared-cache
        lookups (block + decode table) served without compiling."""
        hits = self.cache_stats.get("block_hits", 0) \
            + self.cache_stats.get("program_hits", 0)
        misses = self.cache_stats.get("block_misses", 0) \
            + self.cache_stats.get("program_misses", 0)
        total = hits + misses
        return hits / total if total else None

    @classmethod
    def from_dict(cls, payload: dict) -> "JobResult":
        """Rebuild from a checkpoint record (JSON turned the tuple
        fields into lists; everything identity-bearing survives the
        round trip bit-for-bit)."""
        known = {f.name for f in fields(cls)}
        data = {key: value for key, value in payload.items()
                if key in known}
        data["windows"] = tuple(data.get("windows") or ())
        data["block_cycles"] = tuple(data.get("block_cycles") or ())
        return cls(**data)


def clear_caches() -> None:
    """Drop every process-level simulation cache (cold-cache mode)."""
    from repro.platform import program_cache_clear
    from repro.tamarisc import blocks
    program_cache_clear()
    blocks.cache_clear()


def warm_worker(spec) -> dict:
    """Warm the per-process caches for ``spec``'s program geometry.

    Runs one single-block benchmark at the job geometry (the patient
    seed is irrelevant: all seeds share the program image), which
    decodes the program, compiles the dispatch table and translates
    every hot block.  Returns a report of what the warm-up itself had
    to do — under a forked pool whose parent already warmed, all
    counters come back zero, measuring the inheritance.
    """
    from repro.kernels import BenchmarkSpec, build_benchmark
    from repro.platform import build_platform, program_cache_size
    from repro.tamarisc import blocks

    started = time.perf_counter()
    built = build_benchmark(BenchmarkSpec(
        n_samples=spec.n_samples, n_measurements=spec.n_measurements,
        huffman_private=True, seed=spec.seed))
    system = build_platform(spec.arch, fast_forward=spec.fast_forward,
                            translation_blocks=spec.translation_blocks)
    system.run(built.benchmark)
    summary = system.block_summary()
    return {
        "warm_wall_s": time.perf_counter() - started,
        "arch": spec.arch,
        "blocks_compiled": summary["compiled"] if summary else 0,
        "block_cache_entries": blocks.cache_size(),
        "programs_cached": program_cache_size(),
    }


def execute_job(job_id: int, spec, worker_id: int = 0) -> JobResult:
    """Run one patient stream and reduce it to a :class:`JobResult`.

    Importable directly (no process machinery) so tests and the
    ``--workers`` path share one definition of what a job *is*.
    """
    from repro.kernels import BenchmarkSpec
    from repro.kernels.benchmark import build_block_series
    from repro.obs.telemetry import WindowedAggregator, summaries_digest
    from repro.platform import build_platform, program_cache_stats
    from repro.platform.streaming import SAMPLE_RATE_HZ, run_stream
    from repro.tamarisc import blocks

    if spec.fault == "raise":
        raise RuntimeError(f"fault injection: job {job_id} asked to fail")
    if spec.fault == "exit":
        os._exit(17)  # simulated worker crash (test hook)

    started = time.perf_counter()
    cache_before = {**blocks.cache_stats(), **program_cache_stats()}
    series = build_block_series(
        BenchmarkSpec(n_samples=spec.n_samples,
                      n_measurements=spec.n_measurements,
                      huffman_private=True, seed=spec.seed),
        n_blocks=spec.n_blocks)
    budget = spec.clock_hz * (spec.n_samples / SAMPLE_RATE_HZ)
    system = build_platform(spec.arch, fast_forward=spec.fast_forward,
                            translation_blocks=spec.translation_blocks)
    aggregator = WindowedAggregator.attach(
        system.probe_bus(), window_cycles=spec.window_cycles,
        deadline_budget_cycles=budget)

    # run_stream verifies every block against the golden model and
    # emits block.done for the aggregator's deadline accounting.
    report = run_stream(spec.arch, series, clock_hz=spec.clock_hz,
                        system=system)
    aggregator.detach()
    # Each block runs on a fresh engine, so job-level cache counters
    # are the sum over blocks: a warm worker shows compiled == 0.
    summaries = [outcome.block_summary for outcome in report.blocks
                 if outcome.block_summary is not None]
    compiled = sum(s["compiled"] for s in summaries)
    entries = sum(s["entries"] for s in summaries)
    block_stats = [outcome.stats for outcome in report.blocks]
    cache_after = {**blocks.cache_stats(), **program_cache_stats()}
    cache_delta = {key: cache_after[key] - cache_before[key]
                   for key in cache_after}

    return JobResult(
        job_id=job_id,
        shard_index=spec.shard_index,
        worker_id=worker_id,
        seed=spec.seed,
        arch=spec.arch,
        benchmark=series[0].benchmark.name,
        stats_digest=stats_digest(block_stats),
        telemetry_digest=summaries_digest(aggregator.windows),
        windows=tuple(window.to_dict()
                      for window in aggregator.windows),
        stats_summary={
            "total_cycles": sum(s.total_cycles for s in block_stats),
            "total_retired": sum(s.total_retired for s in block_stats),
            "total_stall_cycles": sum(s.total_stall_cycles
                                      for s in block_stats),
            "im_bank_accesses": sum(s.im_bank_accesses
                                    for s in block_stats),
            "dm_bank_accesses": sum(s.dm_bank_accesses
                                    for s in block_stats),
            "sync_cycles": sum(s.sync_cycles for s in block_stats),
            "worst_block_cycles": report.worst_cycles,
        },
        config=_canonical(system.config),
        blocks_done=len(report.blocks),
        block_cycles=tuple(report.cycles_per_block),
        deadline_misses=report.deadline_misses,
        deadline_budget_cycles=budget,
        block_cache=summaries[-1] if summaries else None,
        blocks_compiled=compiled,
        block_entries=entries,
        cache_stats=cache_delta,
        wall_time_s=time.perf_counter() - started,
    )


def worker_main(worker_id: int, conn, result_queue, warm: bool,
                heartbeat_interval: float = 0.1) -> None:
    """Process entry point: warm, then serve jobs until the ``None``
    sentinel (or a closed pipe) arrives.

    Specs may carry their own payload: a spec with a ``run_in_worker``
    method (e.g. the design-space explorer's escalation jobs) executes
    that instead of the default patient-stream job, and a spec with
    ``farm_warm = False`` skips the ECG warm-up run — its geometry
    would not benefit from warming the default program image.

    A daemon sidecar thread posts ``("beat", worker_id, job_id)`` while
    a job runs.  Pure-Python hangs keep beating (the GIL still yields),
    so the scheduler catches them with the job wall-clock timeout; a
    wedged interpreter (or a deliberately silenced sidecar) stops
    beating and trips the heartbeat timeout instead.
    """
    warm_info = {"worker_id": worker_id, "warm": warm}
    beat_state = {"job": None, "stop": False}

    def _beat():
        while not beat_state["stop"]:
            time.sleep(heartbeat_interval)
            job = beat_state["job"]
            if job is None:
                continue
            try:
                result_queue.put(("beat", worker_id, job))
            except Exception:  # queue torn down: scheduler is gone
                return

    threading.Thread(target=_beat, daemon=True).start()
    try:
        jobs_seen = 0
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None:
                return
            job_id, spec, attempt = message
            beat_state["job"] = job_id  # beat through warm-up too
            if jobs_seen == 0:
                if warm and getattr(spec, "farm_warm", True):
                    warm_info.update(warm_worker(spec))
                result_queue.put(("ready", worker_id, dict(warm_info)))
            jobs_seen += 1
            if not warm:
                clear_caches()
            # Hang-injection test hooks, first attempt only so the
            # requeued retry completes: "hang" spins while beating
            # (caught by the job timeout), "wedge" mutes the sidecar
            # and stalls (caught by the heartbeat timeout).
            fault = getattr(spec, "fault", None)
            if fault == "hang" and attempt <= 1:
                while True:
                    time.sleep(heartbeat_interval)
                    result_queue.put(("beat", worker_id, job_id))
            if fault == "wedge" and attempt <= 1:
                beat_state["job"] = None
                time.sleep(3600)
            try:
                runner = getattr(spec, "run_in_worker", None)
                if runner is not None:
                    result = runner(job_id, worker_id=worker_id)
                else:
                    result = execute_job(job_id, spec, worker_id=worker_id)
            except BaseException:
                result_queue.put(("failed", worker_id,
                                  (job_id, traceback.format_exc())))
                continue
            finally:
                beat_state["job"] = None
            result_queue.put(("done", worker_id, (job_id, result)))
    finally:
        beat_state["stop"] = True
        try:
            conn.close()
        except OSError:
            pass
