"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """An instruction cannot be encoded into (or decoded from) 24 bits."""


class AssemblerError(ReproError):
    """Assembly source is malformed.

    Carries the offending source line number when available.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulated machine reached an illegal state (bad address, ...)."""


class ConfigurationError(ReproError):
    """A platform / memory-layout configuration is inconsistent."""


class CalibrationError(ReproError):
    """A power/technology calibration failed to meet its anchor points."""
