"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """An instruction cannot be encoded into (or decoded from) 24 bits."""


class AssemblerError(ReproError):
    """Assembly source is malformed.

    Carries the offending source line number when available.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulated machine reached an illegal state (bad address, ...)."""


class CycleLimitError(SimulationError):
    """A run exhausted its ``max_cycles`` budget without finishing.

    Subclassed from :class:`SimulationError` so existing callers keep
    working; the fault-injection classifier distinguishes it (a budget
    exhaustion is a *hang* outcome, not a *detected* trap).
    """


class HangError(SimulationError):
    """The sync watchdog tripped: no core retired within the bounded
    cycle window (fault-injection runs only)."""


class TrapError(SimulationError):
    """A core fetched an undecodable instruction word (decode trap).

    Raised when fault injection corrupts instruction memory into a word
    the decoder rejects; the platform's hardware analogue is an illegal
    -instruction trap, so the outcome classifier files it *detected*.
    """


class ConfigurationError(ReproError):
    """A platform / memory-layout configuration is inconsistent."""


class CalibrationError(ReproError):
    """A power/technology calibration failed to meet its anchor points."""
